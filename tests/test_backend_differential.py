"""Cross-backend differential suite: one Kernel core, three backends.

The same programs run through the simulated runtime, the native
(OS-thread) runtime, and the sequential baseline — all three dispatch
through :func:`repro.runtime.core.kernel_loop`.  These tests pin the
properties that make them *one* runtime:

* byte-identical functional output (the functional/timing split means
  the backend can never change what a program computes);
* identical span event names per scheduled unit;
* the same counter namespace from ``publish_counters`` and the same
  fetch/wait accounting rule (one fetch per TSU round trip, one wait
  per WAIT reply — the rule stated in ``kernel_loop``'s docstring).
"""

from collections import Counter as Multiset

import numpy as np
import pytest

from repro.apps import get_benchmark, problem_sizes
from repro.core import ProgramBuilder
from repro.core.dynamic import Subflow
from repro.obs import Tracer
from repro.runtime.native import NativeRuntime
from repro.runtime.simdriver import SimulatedRuntime, run_sequential_timed
from repro.sim.machine import BAGLE_27

NKERNELS = 4


# -- program builders (fresh per run: programs are single-use) -----------------
def build_trapez():
    bench = get_benchmark("trapez")
    size = problem_sizes("trapez", "N")["small"]
    return bench.build(size, unroll=8, max_threads=64), None


def build_blocked(tsu_capacity=6):
    """A three-stage pipeline wide enough to split into several blocks."""
    n = 12
    b = ProgramBuilder("blocked")
    b.env.alloc("a", n)
    b.env.alloc("b", n)
    b.env.alloc("c", n)

    t1 = b.thread(
        "s1", body=lambda env, i: env.array("a").__setitem__(i, i + 1), contexts=n
    )
    t2 = b.thread(
        "s2",
        body=lambda env, i: env.array("b").__setitem__(i, env.array("a")[i] * 2),
        contexts=n,
    )
    t3 = b.thread(
        "s3",
        body=lambda env, i: env.array("c").__setitem__(i, env.array("b")[i] + 1),
        contexts=n,
    )
    red = b.thread(
        "reduce", body=lambda env, _: env.set("total", float(env.array("c").sum()))
    )
    b.depends(t1, t2)
    b.depends(t2, t3)
    b.depends(t3, red, "all")
    return b.build(), tsu_capacity


def build_dynspawn():
    """A data-driven spawn tree: the graph unrolls at run time."""
    nleaves = 8
    b = ProgramBuilder("dynspawn")
    b.env.alloc("leaves", nleaves)

    def make_node(lo, hi):
        def body(env, _ctx):
            if hi - lo == 1:
                env.array("leaves")[lo] = lo + 1
                return None
            mid = (lo + hi) // 2
            sf = Subflow(f"split[{lo}:{hi}]")
            sf.thread(f"node[{lo}:{mid}]", body=make_node(lo, mid))
            sf.thread(f"node[{mid}:{hi}]", body=make_node(mid, hi))
            return sf

        return body

    b.thread("node[root]", body=make_node(0, nleaves))
    b.epilogue(
        "sum", body=lambda env: env.set("total", float(env.array("leaves").sum()))
    )
    return b.build(), None


def build_dyncond():
    """A conditional diamond with a dead chain: every backend must
    squash the same instances and fire the join the same way."""
    b = ProgramBuilder("dyncond")
    b.env.alloc("out", 5)

    def w(slot, value):
        return lambda env, _ctx: env.array("out").__setitem__(slot, value)

    t_pick = b.thread("pick", body=lambda env, _ctx: 1)
    t_left = b.thread("left", body=w(0, 1))
    t_right = b.thread("right", body=w(1, 2))
    t_rdead = b.thread("rdead", body=w(2, 3))
    t_join = b.thread("join", body=w(3, 7))
    b.cond(t_pick, t_left, 1)
    b.cond(t_pick, t_right, 2)
    b.depends(t_right, t_rdead)
    b.depends(t_left, t_join)
    b.depends(t_right, t_join)
    return b.build(), 3


PROGRAMS = {
    "trapez": build_trapez,
    "blocked": build_blocked,
    "dynspawn": build_dynspawn,
    "dyncond": build_dyncond,
}


# -- the three backends --------------------------------------------------------
def run_sim(builder):
    prog, cap = builder()
    return SimulatedRuntime(
        prog, BAGLE_27, nkernels=NKERNELS, tsu_capacity=cap, tracer=Tracer()
    ).run()


def run_native(builder):
    prog, cap = builder()
    return NativeRuntime(
        prog, nkernels=NKERNELS, tsu_capacity=cap, tracer=Tracer()
    ).run()


def run_sequential(builder):
    prog, _ = builder()
    return run_sequential_timed(prog, BAGLE_27, tracer=Tracer())


BACKENDS = {"sim": run_sim, "native": run_native, "sequential": run_sequential}


def env_fingerprint(env):
    """Every array (as raw bytes) and scalar the program produced."""
    fp = {}
    for name in env.names():
        value = env[name]
        fp[name] = value.tobytes() if isinstance(value, np.ndarray) else value
    return fp


def span_names(result, kind):
    return Multiset(s.name for s in result.spans if s.kind == kind)


@pytest.fixture(scope="module", params=sorted(PROGRAMS))
def runs(request):
    builder = PROGRAMS[request.param]
    return {name: run for name, run in
            ((name, fn(builder)) for name, fn in BACKENDS.items())}


# -- functional equivalence ----------------------------------------------------
def test_functional_output_byte_identical(runs):
    fps = {name: env_fingerprint(r.env) for name, r in runs.items()}
    assert fps["sim"] == fps["native"] == fps["sequential"]


def test_same_dthreads_executed(runs):
    totals = {name: r.total_dthreads for name, r in runs.items()}
    assert totals["sim"] == totals["native"] == totals["sequential"]


# -- span equivalence ----------------------------------------------------------
def test_thread_span_names_identical(runs):
    names = {name: span_names(r, "thread") for name, r in runs.items()}
    assert names["sim"] == names["native"] == names["sequential"]


def test_inlet_outlet_span_names_identical_sim_native(runs):
    # The sequential baseline has no blocks to load/clear; sim and native
    # must agree on every Inlet/Outlet they scheduled.
    for kind in ("inlet", "outlet"):
        assert span_names(runs["sim"], kind) == span_names(runs["native"], kind)


# -- counter / accounting equivalence ------------------------------------------
def test_tsu_counter_namespace_identical(runs):
    def tsu_keys(result):
        return {k for k in result.counters.as_dict() if k.startswith("tsu.")}

    assert tsu_keys(runs["sim"]) == tsu_keys(runs["native"])


@pytest.mark.parametrize("backend", ["sim", "native"])
def test_fetch_and_wait_accounting_matches_tsu(runs, backend):
    """The satellite fix pinned: per-kernel fetch/wait counts follow one
    rule on every backend — they must sum to the TSU's own counters (the
    native runtime used to double-count fetches inside its WAIT loop)."""
    r = runs[backend]
    assert sum(k.fetches for k in r.kernels) == r.counters["tsu.fetches"]
    assert sum(k.waits for k in r.kernels) == r.counters["tsu.waits"]


def test_sequential_baseline_accounting(runs):
    """One kernel, one fetch per instance plus the EXIT reply, no waits."""
    r = runs["sequential"]
    (k,) = r.kernels
    assert k.dthreads == r.total_dthreads
    assert k.fetches == k.dthreads + 1
    assert k.waits == 0
