"""Tests for result records (RunResult/KernelStats) and analysis types."""

import pytest

from repro.analysis.speedup import FigureGrid
from repro.core import Environment
from repro.platforms.base import Evaluation
from repro.runtime.stats import KernelStats, RunResult
from repro.sim.cpu import CoreStats


def make_result(cycles=1000, region=800, nkernels=2):
    kernels = []
    for k in range(nkernels):
        ks = KernelStats(k, dthreads=3)
        ks.core = CoreStats(compute_cycles=300, memory_cycles=100, idle_cycles=100)
        kernels.append(ks)
    return RunResult(
        program="p",
        platform="tfluxhard",
        nkernels=nkernels,
        cycles=cycles,
        region_cycles=region,
        env=Environment(),
        kernels=kernels,
    )


def test_speedup_over_uses_region():
    res = make_result(cycles=1000, region=800)
    assert res.speedup_over(1600) == 2.0


def test_speedup_over_falls_back_to_total():
    res = make_result(cycles=1000, region=0)
    assert res.speedup_over(2000) == 2.0


def test_speedup_over_rejects_empty_run():
    res = make_result(cycles=0, region=0)
    with pytest.raises(ValueError):
        res.speedup_over(100)


def test_total_dthreads_and_utilisation():
    res = make_result()
    assert res.total_dthreads == 6
    assert res.utilisation() == pytest.approx(0.8)


def test_summary_line_format():
    line = make_result().summary_line()
    assert "tfluxhard" in line and "kernels=2" in line


def test_utilisation_empty():
    res = make_result()
    res.kernels = []
    assert res.utilisation() == 0.0


# -- FigureGrid ---------------------------------------------------------------
def ev(bench, nk, size, speedup):
    return Evaluation(
        platform="tfluxhard",
        bench=bench,
        size_label=size,
        nkernels=nk,
        speedup=speedup,
        best_unroll=4,
        parallel_cycles=100,
        sequential_cycles=int(100 * speedup),
    )


def test_figure_grid_average():
    grid = FigureGrid("p", ["a", "b"], [2], ["large"])
    grid.cells[("a", 2, "large")] = ev("a", 2, "large", 2.0)
    grid.cells[("b", 2, "large")] = ev("b", 2, "large", 4.0)
    assert grid.average(2, "large") == 3.0


def test_figure_grid_average_skips_missing():
    grid = FigureGrid("p", ["a", "b"], [2], ["large"])
    grid.cells[("a", 2, "large")] = ev("a", 2, "large", 2.0)
    assert grid.average(2, "large") == 2.0


def test_figure_grid_average_empty():
    grid = FigureGrid("p", [], [2], ["large"])
    assert grid.average(2, "large") == 0.0


def test_evaluation_row_contains_key_facts():
    e = ev("qsort", 27, "large", 13.37)
    row = e.row()
    assert "qsort" in row and "13.37" in row and "27" in row
