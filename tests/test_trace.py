"""Tests for the execution tracer and Gantt rendering."""

import pytest

from repro.core import ProgramBuilder
from repro.runtime.simdriver import SimulatedRuntime
from repro.obs import Span, Tracer, render_gantt
from repro.sim.machine import BAGLE_27
from repro.tsu.hardware import HardwareTSUAdapter


def traced_run(nchunks=8, nkernels=4, chunk_cost=1000):
    b = ProgramBuilder("traced")
    b.env.alloc("parts", nchunks)
    t1 = b.thread(
        "work",
        body=lambda env, i: env.array("parts").__setitem__(i, i),
        contexts=nchunks,
        cost=lambda e, c: chunk_cost,
    )
    t2 = b.thread("total", body=lambda env, _: env.set("x", 1), cost=lambda e, c: 10)
    b.depends(t1, t2, "all")
    tracer = Tracer()
    res = SimulatedRuntime(
        b.build(),
        BAGLE_27,
        nkernels=nkernels,
        adapter_factory=lambda e, t: HardwareTSUAdapter(e, t),
        tracer=tracer,
    ).run()
    return tracer, res


def test_spans_recorded_for_all_units():
    tracer, res = traced_run(nchunks=8)
    kinds = [s.kind for s in tracer.spans]
    assert kinds.count("thread") == 9  # 8 work + 1 total
    assert kinds.count("inlet") == 1
    assert kinds.count("outlet") == 1


def test_span_durations_positive_and_ordered():
    tracer, _ = traced_run()
    for s in tracer.spans:
        assert s.end > s.start
        assert s.duration == s.end - s.start


def test_no_overlap_invariant():
    tracer, _ = traced_run(nchunks=32, nkernels=8)
    tracer.check_no_overlap()


def test_overlap_detection_fires():
    t = Tracer()
    t.record(0, "a", "thread", 0, 10)
    t.record(0, "b", "thread", 5, 15)
    with pytest.raises(AssertionError, match="overlaps"):
        t.check_no_overlap()


def test_busy_and_makespan():
    t = Tracer()
    t.record(0, "a", "thread", 0, 10)
    t.record(1, "b", "thread", 5, 30)
    assert t.busy_cycles(0) == 10
    assert t.busy_cycles(1) == 25
    assert t.makespan() == 30
    assert t.critical_kernel() == 1


def test_makespan_matches_runtime_region():
    tracer, res = traced_run(nchunks=16, nkernels=4, chunk_cost=5000)
    # Spans live inside the parallel region.
    assert tracer.makespan() <= res.region_cycles + 1


def test_gantt_render():
    tracer, _ = traced_run(nchunks=8, nkernels=4)
    art = render_gantt(tracer, width=40)
    lines = art.splitlines()
    assert lines[0].startswith("time:")
    assert len(lines) == 5  # header + 4 kernels
    assert "#" in art and "%" in art


def test_gantt_empty():
    assert "no spans" in render_gantt(Tracer())


def test_thread_work_dominates_trace():
    tracer, _ = traced_run(nchunks=8, nkernels=2, chunk_cost=10_000)
    thread_busy = sum(s.duration for s in tracer.spans if s.kind == "thread")
    other_busy = sum(s.duration for s in tracer.spans if s.kind != "thread")
    assert thread_busy > 10 * other_busy
