"""Tests for the DDMCPP preprocessor: directives, lexer, parser, codegen,
and end-to-end program builds."""

import numpy as np
import pytest

from repro.preprocessor import DDMSyntaxError, compile_to_program, emit_module
from repro.preprocessor.directives import split_directives
from repro.preprocessor.lexer import Token, tokenize
from repro.preprocessor.parser import parse_block, parse_expression
from repro.preprocessor import ast_nodes as A


# -- lexer ---------------------------------------------------------------
def kinds(src):
    return [(t.kind, t.value) for t in tokenize(src) if t.kind != "eof"]


def test_lexer_numbers():
    assert kinds("1 2.5 1e3 3.0e-2 .5") == [
        ("num", "1"), ("num", "2.5"), ("num", "1e3"), ("num", "3.0e-2"), ("num", ".5"),
    ]


def test_lexer_idents_keywords():
    assert kinds("int foo for x_1") == [
        ("kw", "int"), ("ident", "foo"), ("kw", "for"), ("ident", "x_1"),
    ]


def test_lexer_operators_longest_match():
    assert kinds("a<<=b <= < ++ +") == [
        ("ident", "a"), ("op", "<<="), ("ident", "b"),
        ("op", "<="), ("op", "<"), ("op", "++"), ("op", "+"),
    ]


def test_lexer_comments_stripped():
    assert kinds("a /* x \n y */ b // end\nc") == [
        ("ident", "a"), ("ident", "b"), ("ident", "c"),
    ]


def test_lexer_string_and_char():
    toks = kinds('"hi\\n" \'A\'')
    assert toks == [("str", '"hi\\n"'), ("num", "65")]


def test_lexer_line_numbers():
    toks = tokenize("a\nb\n  c")
    assert [t.line for t in toks[:3]] == [1, 2, 3]


def test_lexer_unterminated_comment():
    with pytest.raises(DDMSyntaxError):
        tokenize("/* nope")


def test_lexer_bad_char():
    with pytest.raises(DDMSyntaxError):
        tokenize("a @ b")


# -- parser ----------------------------------------------------------------
def test_parse_expression_precedence():
    e = parse_expression("1 + 2 * 3")
    assert isinstance(e, A.BinOp) and e.op == "+"
    assert isinstance(e.right, A.BinOp) and e.right.op == "*"


def test_parse_expression_ternary():
    e = parse_expression("a > b ? a : b")
    assert isinstance(e, A.Ternary)


def test_parse_expression_trailing_rejected():
    with pytest.raises(DDMSyntaxError):
        parse_expression("1 + 2 ;")


def test_parse_multidim_index():
    e = parse_expression("m[i][j]")
    assert isinstance(e, A.Index)
    assert len(e.indices) == 2


def test_parse_statements_forms():
    stmts = parse_block(
        """
        int i, j = 2;
        double x = 1.5;
        i = j + 1;
        i += 3;
        i++;
        if (i > 2) { x = 0; } else x = 1;
        while (i > 0) { i--; }
        for (i = 0; i < 10; i++) { j = j + i; }
        """
    )
    assert len(stmts) == 8


def test_parse_missing_semicolon():
    with pytest.raises(DDMSyntaxError):
        parse_block("i = 1")


def test_parse_unterminated_block():
    with pytest.raises(DDMSyntaxError):
        parse_block("{ i = 1;")


# -- directives ----------------------------------------------------------------
GOOD = """
#pragma ddm startprogram name(demo)
#pragma ddm var double a[4]
#pragma ddm var int n

#pragma ddm thread 1 context(4)
  a[CTX] = CTX;
#pragma ddm endthread

#pragma ddm thread 2 depends(1 all)
  n = 4;
#pragma ddm endthread
#pragma ddm endprogram
"""


def test_split_directives_basic():
    prog = split_directives(GOOD)
    assert prog.name == "demo"
    assert [v.name for v in prog.variables] == ["a", "n"]
    assert prog.variables[0].dims == (4,)
    assert [t.tid for t in prog.threads] == [1, 2]
    assert prog.threads[0].context == 4
    assert prog.threads[1].depends[0].mapping == "all"


def test_split_directives_map_dependence():
    src = GOOD.replace("depends(1 all)", "depends(1 map(CTX / 2))")
    prog = split_directives(src)
    dep = prog.threads[1].depends[0]
    assert dep.mapping == "map" and dep.map_expr == "CTX / 2"


@pytest.mark.parametrize(
    "mutation, message",
    [
        (lambda s: s.replace("#pragma ddm startprogram name(demo)\n", ""), "startprogram"),
        (lambda s: s.replace("#pragma ddm endprogram", ""), "endprogram"),
        (lambda s: s.replace("#pragma ddm endthread", "", 1), "never closed|nested"),
        (lambda s: s.replace("thread 2", "thread 1"), "duplicate"),
        (lambda s: s.replace("depends(1 all)", "depends(9 all)"), "unknown thread"),
        (lambda s: s.replace("var double a[4]", "var complex a[4]"), "malformed"),
    ],
)
def test_split_directives_rejects(mutation, message):
    import re

    with pytest.raises(DDMSyntaxError) as err:
        split_directives(mutation(GOOD))
    assert re.search(message, str(err.value))


def test_code_outside_thread_rejected():
    src = GOOD.replace("#pragma ddm var int n", "int n;")
    with pytest.raises(DDMSyntaxError, match="outside"):
        split_directives(src)


# -- end-to-end ------------------------------------------------------------------
def test_compile_and_run_squares():
    src = """
#pragma ddm startprogram name(squares)
#pragma ddm var double parts[8]
#pragma ddm var double total
#pragma ddm thread 1 context(8)
  parts[CTX] = CTX * CTX;
#pragma ddm endthread
#pragma ddm thread 2 depends(1 all)
  int i;
  total = 0;
  for (i = 0; i < 8; i++) total = total + parts[i];
#pragma ddm endthread
#pragma ddm endprogram
"""
    env = compile_to_program(src).run_sequential()
    assert env.get("total") == 140.0


def test_emitted_module_is_valid_python():
    code = emit_module(GOOD)
    compile(code, "<generated>", "exec")
    assert "def build_program():" in code
    assert "_thread_1" in code


def test_pipeline_same_mapping():
    src = """
#pragma ddm startprogram name(pipe)
#pragma ddm var int a[6]
#pragma ddm var int b[6]
#pragma ddm thread 1 context(6)
  a[CTX] = CTX + 1;
#pragma ddm endthread
#pragma ddm thread 2 context(6) depends(1 same)
  b[CTX] = a[CTX] * 10;
#pragma ddm endthread
#pragma ddm endprogram
"""
    env = compile_to_program(src).run_sequential()
    np.testing.assert_array_equal(env.array("b"), (np.arange(6) + 1) * 10)


def test_map_dependence_tree():
    src = """
#pragma ddm startprogram name(tree)
#pragma ddm var double leaf[8]
#pragma ddm var double mid[4]
#pragma ddm thread 1 context(8)
  leaf[CTX] = 1;
#pragma ddm endthread
#pragma ddm thread 2 context(4) depends(1 map(CTX / 2))
  mid[CTX] = leaf[2 * CTX] + leaf[2 * CTX + 1];
#pragma ddm endthread
#pragma ddm endprogram
"""
    env = compile_to_program(src).run_sequential()
    np.testing.assert_array_equal(env.array("mid"), [2.0, 2.0, 2.0, 2.0])


def test_prologue_epilogue_sections():
    src = """
#pragma ddm startprogram name(pe)
#pragma ddm var int x
#pragma ddm prologue
  x = 10;
#pragma ddm endprologue
#pragma ddm thread 1
  x = x + 5;
#pragma ddm endthread
#pragma ddm epilogue
  x = x * 2;
#pragma ddm endepilogue
#pragma ddm endprogram
"""
    env = compile_to_program(src).run_sequential()
    assert env.get("x") == 30


def test_c_division_semantics():
    src = """
#pragma ddm startprogram name(div)
#pragma ddm var int q
#pragma ddm var int r
#pragma ddm var double f
#pragma ddm thread 1
  q = (0 - 7) / 2;
  r = (0 - 7) % 2;
  f = 7.0 / 2;
#pragma ddm endthread
#pragma ddm endprogram
"""
    env = compile_to_program(src).run_sequential()
    assert env.get("q") == -3  # C truncates toward zero
    assert env.get("r") == -1  # remainder follows dividend
    assert env.get("f") == 3.5


def test_intrinsics():
    src = """
#pragma ddm startprogram name(m)
#pragma ddm var double y
#pragma ddm thread 1
  y = sqrt(16.0) + fabs(0 - 2) + pow(2, 3) + fmax(1, 5);
#pragma ddm endthread
#pragma ddm endprogram
"""
    env = compile_to_program(src).run_sequential()
    assert env.get("y") == 4 + 2 + 8 + 5


def test_unknown_call_rejected():
    src = """
#pragma ddm startprogram name(m)
#pragma ddm var double y
#pragma ddm thread 1
  y = launch_missiles();
#pragma ddm endthread
#pragma ddm endprogram
"""
    with pytest.raises(DDMSyntaxError, match="intrinsic"):
        compile_to_program(src)


def test_continue_in_noncanonical_for_rejected():
    src = """
#pragma ddm startprogram name(m)
#pragma ddm var int x
#pragma ddm thread 1
  int i;
  for (i = 0; i < 10; i = i * 2 + 1) {
    if (i == 3) continue;
    x = x + i;
  }
#pragma ddm endthread
#pragma ddm endprogram
"""
    with pytest.raises(DDMSyntaxError, match="non-canonical"):
        compile_to_program(src)


def test_continue_in_canonical_for_works():
    src = """
#pragma ddm startprogram name(m)
#pragma ddm var int x
#pragma ddm thread 1
  int i;
  x = 0;
  for (i = 0; i < 5; i++) {
    if (i == 2) continue;
    x = x + i;
  }
#pragma ddm endthread
#pragma ddm endprogram
"""
    env = compile_to_program(src).run_sequential()
    assert env.get("x") == 0 + 1 + 3 + 4


def test_local_shadowing_shared_rejected():
    src = """
#pragma ddm startprogram name(m)
#pragma ddm var int x
#pragma ddm thread 1
  int x;
  x = 1;
#pragma ddm endthread
#pragma ddm endprogram
"""
    with pytest.raises(DDMSyntaxError, match="shadows"):
        compile_to_program(src)


def test_preprocessed_program_runs_on_platform():
    from repro.platforms import TFluxHard

    prog = compile_to_program(
        """
#pragma ddm startprogram name(plat)
#pragma ddm var double parts[12]
#pragma ddm var double total
#pragma ddm thread 1 context(12)
  parts[CTX] = CTX + 1;
#pragma ddm endthread
#pragma ddm thread 2 depends(1 all)
  int i;
  total = 0;
  for (i = 0; i < 12; i++) total = total + parts[i];
#pragma ddm endthread
#pragma ddm endprogram
"""
    )
    res = TFluxHard().execute(prog, nkernels=4)
    assert res.env.get("total") == 78.0


def test_2d_array_support():
    src = """
#pragma ddm startprogram name(mat)
#pragma ddm var double m[3][4]
#pragma ddm var double trace
#pragma ddm thread 1 context(3)
  int j;
  for (j = 0; j < 4; j++) m[CTX][j] = CTX * 10 + j;
#pragma ddm endthread
#pragma ddm thread 2 depends(1 all)
  trace = m[0][0] + m[1][1] + m[2][2];
#pragma ddm endthread
#pragma ddm endprogram
"""
    env = compile_to_program(src).run_sequential()
    assert env.array("m").shape == (3, 4)
    assert env.get("trace") == 0 + 11 + 22


def test_char_literal_with_escaped_quote():
    from repro.preprocessor.lexer import tokenize

    toks = [t for t in tokenize("c = '\\'';") if t.kind == "num"]
    assert toks[0].value == str(ord("'"))


def test_int_declaration_truncates_float_initializer():
    src = """
#pragma ddm startprogram name(trunc)
#pragma ddm var int r
#pragma ddm thread 1
  int half = 5 * 0.5;
  r = half;
#pragma ddm endthread
#pragma ddm endprogram
"""
    env = compile_to_program(src).run_sequential()
    assert env.get("r") == 2  # C truncates 2.5 toward zero


def test_printf_percent_escape(capsys):
    src = """
#pragma ddm startprogram name(pct)
#pragma ddm var int x
#pragma ddm thread 1
  printf("100%% done");
  x = 1;
#pragma ddm endthread
#pragma ddm endprogram
"""
    compile_to_program(src).run_sequential()
    assert capsys.readouterr().out == "100% done"
