"""The recording layer of the dynamic race detector (repro.check).

Two properties pinned here:

* **Exactness** — :class:`RecordingArray` footprints equal the byte
  intervals the real NumPy operation touches, for every index kind the
  apps use (slices, strides, rows, columns, fancy/boolean, scalars),
  with conservative whole-array fallbacks only where element selection
  is invisible (coercion, ufuncs, reductions, mutating methods);
* **Functional transparency** — every operation through the wrapper
  computes the same values and mutates the same backing array as the
  raw Environment would.

Plus the satellite pieces: per-name scalar offsets inside the
``__scalars__`` region, and the ``intervals_difference`` primitive the
checker judges declared-vs-observed footprints with.
"""

import numpy as np
import pytest

from repro.check.recording import (
    SCALARS_REGION,
    AccessSink,
    CheckedEnvironment,
    RecordingArray,
)
from repro.core import ProgramBuilder
from repro.core.environment import _SCALAR_SLOT_BYTES
from repro.core.regions import EMPTY_INTERVALS, intervals_difference


class CaptureSink(AccessSink):
    """Flat list of (region, [(lo, hi), ...], is_write) tuples."""

    def __init__(self):
        self.ops = []

    def record(self, region, intervals, is_write):
        self.ops.append(
            (region, [(int(lo), int(hi)) for lo, hi in intervals], bool(is_write))
        )

    def reads(self, region=None):
        return [iv for r, iv, w in self.ops if not w and region in (None, r)]

    def writes(self, region=None):
        return [iv for r, iv, w in self.ops if w and region in (None, r)]


def wrapped(base):
    sink = CaptureSink()
    return RecordingArray(base, "a", sink), sink


# -- intervals_difference (the checker's coverage primitive) -------------------
def test_intervals_difference_punches_holes():
    a = np.array([[0, 10]], dtype=np.int64)
    b = np.array([[3, 5]], dtype=np.int64)
    np.testing.assert_array_equal(intervals_difference(a, b), [[0, 3], [5, 10]])


def test_intervals_difference_disjoint_and_covered():
    a = np.array([[0, 4], [8, 12]], dtype=np.int64)
    np.testing.assert_array_equal(
        intervals_difference(a, np.array([[4, 8]], dtype=np.int64)), a
    )
    assert len(intervals_difference(a, np.array([[0, 12]], dtype=np.int64))) == 0


def test_intervals_difference_empty_operands():
    a = np.array([[0, 4]], dtype=np.int64)
    assert len(intervals_difference(EMPTY_INTERVALS, a)) == 0
    np.testing.assert_array_equal(intervals_difference(a, EMPTY_INTERVALS), a)


# -- exact footprints ----------------------------------------------------------
def test_contiguous_slice_read_is_exact():
    ra, sink = wrapped(np.arange(8.0))
    out = ra[2:5]
    np.testing.assert_array_equal(out, [2.0, 3.0, 4.0])
    assert sink.ops == [("a", [(16, 40)], False)]


def test_strided_slice_enumerates_elements():
    ra, sink = wrapped(np.arange(8.0))
    ra[::2]
    assert sink.reads("a") == [[(0, 8), (16, 24), (32, 40), (48, 56)]]


def test_negative_step_is_the_same_bytes():
    ra, sink = wrapped(np.arange(8.0))
    ra[::-1]
    assert sink.reads("a") == [[(0, 64)]]


def test_row_and_column_of_2d():
    base = np.arange(16.0).reshape(4, 4)
    ra, sink = wrapped(base)
    ra[1]
    ra[:, 1]
    assert sink.reads("a") == [
        [(32, 64)],
        [(8, 16), (40, 48), (72, 80), (104, 112)],
    ]


def test_scalar_and_fancy_index():
    ra, sink = wrapped(np.arange(8.0))
    assert ra[2] == 2.0
    ra[[0, 3, 3]]
    ra[np.arange(8) % 2 == 1]  # boolean mask: odd elements
    assert sink.reads("a") == [
        [(16, 24)],
        [(0, 8), (24, 32)],
        [(8, 16), (24, 32), (40, 48), (56, 64)],
    ]


def test_write_records_and_mutates():
    base = np.zeros(4)
    ra, sink = wrapped(base)
    ra[1:3] = 5.0
    assert sink.ops == [("a", [(8, 24)], True)]
    np.testing.assert_array_equal(base, [0.0, 5.0, 5.0, 0.0])


def test_empty_selection_records_nothing():
    ra, sink = wrapped(np.arange(4.0))
    ra[2:2]
    assert sink.ops == []


# -- conservative fallbacks ----------------------------------------------------
def test_coercion_and_ufuncs_are_whole_reads():
    ra, sink = wrapped(np.arange(4.0))
    np.testing.assert_array_equal(np.asarray(ra), np.arange(4.0))
    np.testing.assert_array_equal(np.add(ra, 1.0), np.arange(1.0, 5.0))
    assert sink.ops == [("a", [(0, 32)], False)] * 2


def test_ufunc_out_target_is_a_whole_write():
    base = np.arange(4.0)
    ra, sink = wrapped(base)
    np.add(ra, 1.0, out=ra)
    assert ("a", [(0, 32)], True) in sink.ops
    np.testing.assert_array_equal(base, np.arange(1.0, 5.0))


def test_inplace_operator_is_read_plus_write_and_stays_wrapped():
    base = np.ones(4)
    ra, sink = wrapped(base)
    ra += 2.0
    assert isinstance(ra, RecordingArray)
    assert ("a", [(0, 32)], False) in sink.ops
    assert ("a", [(0, 32)], True) in sink.ops
    np.testing.assert_array_equal(base, [3.0] * 4)


def test_reductions_read_mutators_read_write():
    base = np.arange(4.0)
    ra, sink = wrapped(base)
    assert ra.sum() == 6.0
    assert sink.ops == [("a", [(0, 32)], False)]
    sink.ops.clear()
    ra.fill(0.0)
    assert sink.ops == [("a", [(0, 32)], False), ("a", [(0, 32)], True)]
    np.testing.assert_array_equal(base, np.zeros(4))


def test_metadata_records_nothing():
    ra, sink = wrapped(np.arange(6.0).reshape(2, 3))
    assert ra.shape == (2, 3)
    assert ra.dtype == np.float64
    assert len(ra) == 2
    assert ra.size == 6
    assert sink.ops == []


# -- CheckedEnvironment: scalars and array hand-out ----------------------------
def test_scalar_offsets_are_stable_and_distinct():
    env = ProgramBuilder("s").env
    off_x = env.scalar_offset("x")
    off_y = env.scalar_offset("y")
    assert off_x != off_y
    assert env.scalar_offset("x") == off_x  # stable across calls
    assert off_y - off_x == _SCALAR_SLOT_BYTES


def test_checked_env_records_scalar_traffic_per_name():
    env = ProgramBuilder("s").env
    sink = CaptureSink()
    cenv = CheckedEnvironment(env, sink)
    cenv.set("x", 1.0)
    assert cenv.get("x") == 1.0
    cenv["y"] = 2.0
    assert cenv["y"] == 2.0
    ox, oy = env.scalar_offset("x"), env.scalar_offset("y")
    assert sink.ops == [
        (SCALARS_REGION, [(ox, ox + _SCALAR_SLOT_BYTES)], True),
        (SCALARS_REGION, [(ox, ox + _SCALAR_SLOT_BYTES)], False),
        (SCALARS_REGION, [(oy, oy + _SCALAR_SLOT_BYTES)], True),
        (SCALARS_REGION, [(oy, oy + _SCALAR_SLOT_BYTES)], False),
    ]


def test_checked_env_wraps_arrays_and_records_through_them():
    b = ProgramBuilder("s")
    base = b.env.alloc("a", 4)
    sink = CaptureSink()
    cenv = CheckedEnvironment(b.env, sink)
    arr = cenv.array("a")
    assert isinstance(arr, RecordingArray)
    assert cenv["a"] is arr  # item access hands out the same wrapper
    assert sink.ops == []  # handing out the wrapper is not traffic
    arr[0] = 7.0
    assert base[0] == 7.0
    assert sink.ops == [("a", [(0, 8)], True)]


def test_checked_env_whole_array_assignment_is_a_whole_write():
    b = ProgramBuilder("s")
    b.env.alloc("a", 4)
    sink = CaptureSink()
    cenv = CheckedEnvironment(b.env, sink)
    cenv["a"] = np.ones(4)
    assert sink.ops == [("a", [(0, 32)], True)]
    np.testing.assert_array_equal(b.env.array("a"), np.ones(4))


def test_unknown_dunder_probe_does_not_leak_the_base():
    ra, _ = wrapped(np.arange(4.0))
    with pytest.raises(AttributeError):
        ra.__deepcopy__
