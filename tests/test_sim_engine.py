"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import Engine, Event, Resource, SimulationError


def test_clock_starts_at_zero():
    eng = Engine()
    assert eng.now == 0.0


def test_timeout_advances_clock():
    eng = Engine()

    def proc(eng):
        yield 5
        yield 7
        return eng.now

    p = eng.process(proc(eng))
    eng.run()
    assert p.value == 12
    assert eng.now == 12


def test_event_wait_and_value():
    eng = Engine()
    ev = eng.event("ping")

    def producer(eng, ev):
        yield 10
        ev.succeed("pong")

    def consumer(ev):
        value = yield ev
        return value

    eng.process(producer(eng, ev))
    c = eng.process(consumer(ev))
    eng.run()
    assert c.value == "pong"


def test_wait_on_already_triggered_event():
    eng = Engine()
    ev = eng.event()
    ev.succeed(42)

    def consumer(ev):
        v = yield ev
        return v

    c = eng.process(consumer(ev))
    eng.run()
    assert c.value == 42


def test_event_double_trigger_rejected():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failed_event_raises_in_waiter():
    eng = Engine()
    ev = eng.event()

    def consumer(ev):
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    c = eng.process(consumer(ev))
    ev.fail(ValueError("boom"))
    eng.run()
    assert c.value == "caught boom"


def test_process_waits_on_process():
    eng = Engine()

    def inner():
        yield 3
        return "inner-done"

    def outer(eng):
        p = eng.process(inner())
        result = yield p
        return (eng.now, result)

    o = eng.process(outer(eng))
    eng.run()
    assert o.value == (3, "inner-done")


def test_run_until_pauses_clock():
    eng = Engine()

    def proc():
        yield 100

    eng.process(proc())
    eng.run(until=40)
    assert eng.now == 40
    eng.run()
    assert eng.now == 100


def test_same_time_events_fifo_order():
    eng = Engine()
    order = []

    def proc(tag):
        yield 5
        order.append(tag)

    for tag in ("a", "b", "c"):
        eng.process(proc(tag))
    eng.run()
    assert order == ["a", "b", "c"]


def test_resource_mutual_exclusion():
    eng = Engine()
    res = Resource(eng, capacity=1, name="bus")
    timeline = []

    def user(eng, res, tag, hold):
        grant = res.request()
        yield grant
        timeline.append((eng.now, tag, "acquire"))
        yield hold
        res.release()
        timeline.append((eng.now, tag, "release"))

    eng.process(user(eng, res, "a", 10))
    eng.process(user(eng, res, "b", 5))
    eng.run()
    assert timeline == [
        (0, "a", "acquire"),
        (10, "a", "release"),
        (10, "b", "acquire"),
        (15, "b", "release"),
    ]


def test_resource_capacity_two():
    eng = Engine()
    res = Resource(eng, capacity=2)
    active = {"n": 0, "max": 0}

    def user(eng, res):
        grant = res.request()
        yield grant
        active["n"] += 1
        active["max"] = max(active["max"], active["n"])
        yield 5
        active["n"] -= 1
        res.release()

    for _ in range(5):
        eng.process(user(eng, res))
    eng.run()
    assert active["max"] == 2
    assert active["n"] == 0


def test_resource_release_when_idle_rejected():
    eng = Engine()
    res = Resource(eng)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_fifo_grant_order():
    eng = Engine()
    res = Resource(eng, capacity=1)
    grants = []

    def user(eng, res, tag):
        grant = res.request()
        yield grant
        grants.append(tag)
        yield 1
        res.release()

    for tag in range(6):
        eng.process(user(eng, res, tag))
    eng.run()
    assert grants == list(range(6))


def test_resource_try_acquire_and_lazy_release():
    """The fast-path primitives: a synchronous grant costs no events and
    a lazy release frees the slot strictly *after* its deadline.  At the
    deadline itself the release is still in flight (on the eager path it
    is an event later in the same cycle's sequence order), so the
    synchronous grant must refuse and send the requester through the
    queued protocol — granting at the deadline cycle, but with the FIFO
    sequence numbering the slow path produces."""
    eng = Engine()
    res = Resource(eng, capacity=1, name="bus")
    before = eng.events_scheduled
    assert res.try_acquire()
    assert eng.events_scheduled == before  # no grant event materialised
    assert not res.try_acquire()  # busy until the lazy deadline
    res.release_at(10.0)
    timeline = []

    def late_user(eng, res):
        yield 10
        # At the deadline the hold has not passively expired ...
        assert not res.try_acquire()
        # ... but a queued request is granted at this exact cycle via a
        # materialised release event.
        grant = res.request()
        yield grant
        timeline.append(eng.now)
        res.release()

    eng.process(late_user(eng, res))
    eng.run()
    assert timeline == [10.0]


def test_resource_lazy_release_materialises_for_waiters():
    """A requester that queues behind a lazy hold is granted at the exact
    deadline, through the normal FIFO grant event."""
    eng = Engine()
    res = Resource(eng, capacity=1)
    assert res.try_acquire()
    res.release_at(7.0)
    grants = []

    def waiter(eng, res, tag):
        grant = res.request()
        yield grant
        grants.append((eng.now, tag))
        yield 2
        res.release()

    def early(eng, res):
        yield 3
        eng.process(waiter(eng, res, "a"))
        eng.process(waiter(eng, res, "b"))

    eng.process(early(eng, res))
    eng.run()
    assert grants == [(7.0, "a"), (9.0, "b")]


def test_resource_release_at_with_queue_delivers_eagerly():
    """release_at while a waiter is queued must hand over at the deadline
    (the queue-implies-no-unmaterialised-lazy-holds invariant)."""
    eng = Engine()
    res = Resource(eng, capacity=1)
    grants = []

    def holder(eng, res):
        grant = res.request()
        yield grant
        yield 4
        res.release_at(eng.now + 3)  # frees at t=7

    def waiter(eng, res):
        yield 1
        grant = res.request()
        yield grant
        grants.append(eng.now)
        res.release()

    eng.process(holder(eng, res))
    eng.process(waiter(eng, res))
    eng.run()
    assert grants == [7.0]


def test_resource_try_acquire_respects_queue_fifo():
    """try_acquire never jumps a queued waiter, even with capacity free
    at the lazy deadline."""
    eng = Engine()
    res = Resource(eng, capacity=1)
    order = []

    def holder(eng, res):
        assert res.try_acquire()
        res.release_at(5.0)
        yield 0

    def waiter(eng, res):
        yield 2
        grant = res.request()
        yield grant
        order.append(("waiter", eng.now))
        yield 1
        res.release()

    def sniper(eng, res):
        yield 5
        # Arrives exactly at the lazy deadline, but behind the queue.
        if res.try_acquire():
            order.append(("sniper", eng.now))
            res.release()

    eng.process(holder(eng, res))
    eng.process(waiter(eng, res))
    eng.process(sniper(eng, res))
    eng.run()
    assert order == [("waiter", 5.0)]


def test_all_of_combines_events():
    eng = Engine()
    evs = [eng.event() for _ in range(3)]

    def trigger(eng, ev, delay, value):
        yield delay
        ev.succeed(value)

    for i, ev in enumerate(evs):
        eng.process(trigger(eng, ev, 10 - i, i))

    def waiter(eng, combined):
        values = yield combined
        return (eng.now, values)

    w = eng.process(waiter(eng, eng.all_of(evs)))
    eng.run()
    assert w.value == (10, [0, 1, 2])


def test_all_of_empty_triggers_immediately():
    eng = Engine()

    def waiter(combined):
        v = yield combined
        return v

    w = eng.process(waiter(eng.all_of([])))
    eng.run()
    assert w.value == []


def test_negative_delay_rejected():
    eng = Engine()

    def proc():
        yield -1

    eng.process(proc())
    with pytest.raises(SimulationError):
        eng.run()


def test_bad_yield_target_raises_inside_process():
    eng = Engine()

    def proc():
        try:
            yield "not-a-valid-target"
        except SimulationError:
            return "handled"

    p = eng.process(proc())
    eng.run()
    assert p.value == "handled"


def test_many_interleaved_processes_deterministic():
    def run_once():
        eng = Engine()
        trace = []

        def worker(eng, tag, period, count):
            for _ in range(count):
                yield period
                trace.append((eng.now, tag))

        for tag, period in [("x", 3), ("y", 5), ("z", 7)]:
            eng.process(worker(eng, tag, period, 10))
        eng.run()
        return trace

    assert run_once() == run_once()
    trace = run_once()
    times = [t for (t, _) in trace]
    assert times == sorted(times)


def test_generator_recovers_from_bad_yield_with_new_target():
    """Regression: a process that catches the unsupported-yield error and
    yields a *valid* target afterwards must keep running (the recovered
    target used to be dropped, stalling the process forever)."""
    eng = Engine()

    def proc(eng):
        try:
            yield "bogus"
        except SimulationError:
            yield 7  # recover with a real delay
        return eng.now

    p = eng.process(proc(eng))
    eng.run()
    assert p.value == 7


def test_with_cores_rescales_l2_pattern():
    from repro.sim.machine import XEON_8

    four = XEON_8.with_cores(4)
    assert four.l2_groups() == [0, 0, 1, 1]
