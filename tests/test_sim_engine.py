"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import Engine, Event, Resource, SimulationError


def test_clock_starts_at_zero():
    eng = Engine()
    assert eng.now == 0.0


def test_timeout_advances_clock():
    eng = Engine()

    def proc(eng):
        yield 5
        yield 7
        return eng.now

    p = eng.process(proc(eng))
    eng.run()
    assert p.value == 12
    assert eng.now == 12


def test_event_wait_and_value():
    eng = Engine()
    ev = eng.event("ping")

    def producer(eng, ev):
        yield 10
        ev.succeed("pong")

    def consumer(ev):
        value = yield ev
        return value

    eng.process(producer(eng, ev))
    c = eng.process(consumer(ev))
    eng.run()
    assert c.value == "pong"


def test_wait_on_already_triggered_event():
    eng = Engine()
    ev = eng.event()
    ev.succeed(42)

    def consumer(ev):
        v = yield ev
        return v

    c = eng.process(consumer(ev))
    eng.run()
    assert c.value == 42


def test_event_double_trigger_rejected():
    eng = Engine()
    ev = eng.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_failed_event_raises_in_waiter():
    eng = Engine()
    ev = eng.event()

    def consumer(ev):
        try:
            yield ev
        except ValueError as exc:
            return f"caught {exc}"

    c = eng.process(consumer(ev))
    ev.fail(ValueError("boom"))
    eng.run()
    assert c.value == "caught boom"


def test_process_waits_on_process():
    eng = Engine()

    def inner():
        yield 3
        return "inner-done"

    def outer(eng):
        p = eng.process(inner())
        result = yield p
        return (eng.now, result)

    o = eng.process(outer(eng))
    eng.run()
    assert o.value == (3, "inner-done")


def test_run_until_pauses_clock():
    eng = Engine()

    def proc():
        yield 100

    eng.process(proc())
    eng.run(until=40)
    assert eng.now == 40
    eng.run()
    assert eng.now == 100


def test_same_time_events_fifo_order():
    eng = Engine()
    order = []

    def proc(tag):
        yield 5
        order.append(tag)

    for tag in ("a", "b", "c"):
        eng.process(proc(tag))
    eng.run()
    assert order == ["a", "b", "c"]


def test_resource_mutual_exclusion():
    eng = Engine()
    res = Resource(eng, capacity=1, name="bus")
    timeline = []

    def user(eng, res, tag, hold):
        grant = res.request()
        yield grant
        timeline.append((eng.now, tag, "acquire"))
        yield hold
        res.release()
        timeline.append((eng.now, tag, "release"))

    eng.process(user(eng, res, "a", 10))
    eng.process(user(eng, res, "b", 5))
    eng.run()
    assert timeline == [
        (0, "a", "acquire"),
        (10, "a", "release"),
        (10, "b", "acquire"),
        (15, "b", "release"),
    ]


def test_resource_capacity_two():
    eng = Engine()
    res = Resource(eng, capacity=2)
    active = {"n": 0, "max": 0}

    def user(eng, res):
        grant = res.request()
        yield grant
        active["n"] += 1
        active["max"] = max(active["max"], active["n"])
        yield 5
        active["n"] -= 1
        res.release()

    for _ in range(5):
        eng.process(user(eng, res))
    eng.run()
    assert active["max"] == 2
    assert active["n"] == 0


def test_resource_release_when_idle_rejected():
    eng = Engine()
    res = Resource(eng)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_fifo_grant_order():
    eng = Engine()
    res = Resource(eng, capacity=1)
    grants = []

    def user(eng, res, tag):
        grant = res.request()
        yield grant
        grants.append(tag)
        yield 1
        res.release()

    for tag in range(6):
        eng.process(user(eng, res, tag))
    eng.run()
    assert grants == list(range(6))


def test_all_of_combines_events():
    eng = Engine()
    evs = [eng.event() for _ in range(3)]

    def trigger(eng, ev, delay, value):
        yield delay
        ev.succeed(value)

    for i, ev in enumerate(evs):
        eng.process(trigger(eng, ev, 10 - i, i))

    def waiter(eng, combined):
        values = yield combined
        return (eng.now, values)

    w = eng.process(waiter(eng, eng.all_of(evs)))
    eng.run()
    assert w.value == (10, [0, 1, 2])


def test_all_of_empty_triggers_immediately():
    eng = Engine()

    def waiter(combined):
        v = yield combined
        return v

    w = eng.process(waiter(eng.all_of([])))
    eng.run()
    assert w.value == []


def test_negative_delay_rejected():
    eng = Engine()

    def proc():
        yield -1

    eng.process(proc())
    with pytest.raises(SimulationError):
        eng.run()


def test_bad_yield_target_raises_inside_process():
    eng = Engine()

    def proc():
        try:
            yield "not-a-valid-target"
        except SimulationError:
            return "handled"

    p = eng.process(proc())
    eng.run()
    assert p.value == "handled"


def test_many_interleaved_processes_deterministic():
    def run_once():
        eng = Engine()
        trace = []

        def worker(eng, tag, period, count):
            for _ in range(count):
                yield period
                trace.append((eng.now, tag))

        for tag, period in [("x", 3), ("y", 5), ("z", 7)]:
            eng.process(worker(eng, tag, period, 10))
        eng.run()
        return trace

    assert run_once() == run_once()
    trace = run_once()
    times = [t for (t, _) in trace]
    assert times == sorted(times)


def test_generator_recovers_from_bad_yield_with_new_target():
    """Regression: a process that catches the unsupported-yield error and
    yields a *valid* target afterwards must keep running (the recovered
    target used to be dropped, stalling the process forever)."""
    eng = Engine()

    def proc(eng):
        try:
            yield "bogus"
        except SimulationError:
            yield 7  # recover with a real delay
        return eng.now

    p = eng.process(proc(eng))
    eng.run()
    assert p.value == 7


def test_with_cores_rescales_l2_pattern():
    from repro.sim.machine import XEON_8

    four = XEON_8.with_cores(4)
    assert four.l2_groups() == [0, 0, 1, 1]
