"""Failure-injection tests: the runtime must fail loudly, not hang.

DDM runtimes are concurrency machinery; the failure modes that matter
are silent deadlocks, lost completions, and resource exhaustion.  These
tests inject each fault and assert a diagnostic error (or correct
recovery) within bounded time.
"""

import threading
import time

import pytest

from repro.core import ProgramBuilder
from repro.runtime.native import NativeRuntime
from repro.runtime.simdriver import SimulatedRuntime
from repro.sim.machine import BAGLE_27
from repro.tsu.group import FetchKind, TSUGroup
from repro.tsu.software import SoftTSUCosts, SoftwareTSUAdapter
from repro.tsu.tub import ThreadUpdateBuffer, TUBFullError


def simple_program(n=6):
    b = ProgramBuilder("p")
    b.env.alloc("parts", n)
    t1 = b.thread(
        "w", body=lambda env, i: env.array("parts").__setitem__(i, i), contexts=n
    )
    t2 = b.thread("r", body=lambda env, _: env.set("done", True))
    b.depends(t1, t2, "all")
    return b.build()


# -- lost completion -----------------------------------------------------------
def test_lost_completion_detected_as_stall():
    """An adapter that drops a completion leaves the DES with waiting
    kernels and an un-exited TSU -> the driver reports a stall."""

    class DroppyAdapter(SoftwareTSUAdapter):
        dropped = False

        def complete_thread(self, kernel, local_iid, instance, outcome=None):
            if not DroppyAdapter.dropped:
                DroppyAdapter.dropped = True
                yield 1  # swallow the completion entirely
                return
            yield from super().complete_thread(
                kernel, local_iid, instance, outcome
            )

    rt = SimulatedRuntime(
        simple_program(),
        BAGLE_27,
        nkernels=2,
        adapter_factory=lambda e, t: DroppyAdapter(e, t),
    )
    with pytest.raises(RuntimeError, match="stalled"):
        rt.run()


# -- double completion ------------------------------------------------------------
def test_double_completion_rejected():
    prog = simple_program(2)
    tsu = TSUGroup(1, prog.blocks())
    f = tsu.fetch(0)
    assert f.kind == FetchKind.INLET
    tsu.complete_inlet(0)
    f = tsu.fetch(0)
    assert f.kind == FetchKind.THREAD
    tsu.complete_thread(0, f.local_iid)
    with pytest.raises(RuntimeError):
        tsu.complete_thread(0, f.local_iid)


# -- TUB exhaustion -----------------------------------------------------------------
def test_tub_spinout_is_diagnosed():
    tub = ThreadUpdateBuffer(nsegments=1, segment_capacity=1)
    tub.push("a")
    with pytest.raises(TUBFullError, match="spun out"):
        tub.push("b", max_spins=5)


def test_tub_contention_under_threads():
    """Hammer the TUB from several threads while a drainer runs: no item
    is lost or duplicated."""
    tub = ThreadUpdateBuffer(nsegments=4, segment_capacity=8)
    n_producers, per_producer = 4, 200
    drained: list = []
    stop = threading.Event()

    def producer(tag):
        for i in range(per_producer):
            tub.push((tag, i), preferred_segment=tag)

    def drainer():
        while not stop.is_set() or len(tub):
            drained.extend(tub.drain())
            time.sleep(0.0002)

    threads = [threading.Thread(target=producer, args=(t,)) for t in range(n_producers)]
    d = threading.Thread(target=drainer)
    d.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    stop.set()
    d.join(timeout=5)
    assert sorted(drained) == sorted(
        (t, i) for t in range(n_producers) for i in range(per_producer)
    )


# -- native runtime fault paths ---------------------------------------------------------
def test_native_body_exception_does_not_hang():
    b = ProgramBuilder("boom")
    b.thread("ok", body=lambda env, _: None, contexts=3)
    t_bad = b.thread("bad", body=lambda env, _: 1 / 0)
    prog = b.build()
    t0 = time.perf_counter()
    with pytest.raises(RuntimeError, match="failed"):
        NativeRuntime(prog, nkernels=3).run()
    assert time.perf_counter() - t0 < 10


def test_native_emulator_death_surfaces():
    """If the TSU emulator thread dies, kernels must not spin forever."""

    class BrokenTUB(ThreadUpdateBuffer):
        def drain(self):
            raise RuntimeError("emulator hardware fault")

    rt = NativeRuntime(simple_program(), nkernels=2)
    rt.tub = BrokenTUB(2, 16)
    t0 = time.perf_counter()
    with pytest.raises(RuntimeError):
        rt.run()
    assert time.perf_counter() - t0 < 10


# -- corrupted metadata ----------------------------------------------------------------
def test_ready_count_underflow_diagnosed():
    prog = simple_program(2)
    tsu = TSUGroup(1, prog.blocks())
    tsu.fetch(0)
    tsu.complete_inlet(0)
    # Corrupt: pre-decrement the reducer's ready count below reality.
    reducer_local = next(
        i for i, inst in enumerate(tsu.current_block.instances)
        if inst.template.name == "r"
    )
    sm = tsu.sms[tsu.tkt.kernel_of(reducer_local)]
    sm.decrement(reducer_local)
    sm.decrement(reducer_local)
    with pytest.raises(RuntimeError, match="underflow"):
        sm.decrement(reducer_local)
