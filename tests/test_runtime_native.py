"""Tests for the native (real-threads) TFluxSoft-style runtime."""

import numpy as np
import pytest

from repro.core import ProgramBuilder
from repro.runtime.native import NativeRuntime
from repro.tsu.policy import round_robin_placement


def parallel_sum_program(nchunks=16):
    b = ProgramBuilder("psum")
    b.env.alloc("parts", nchunks)

    def work(env, i):
        env.array("parts")[i] = (i + 1) ** 2

    def total(env, _):
        env.set("total", float(env.array("parts").sum()))

    t1 = b.thread("work", body=work, contexts=nchunks)
    t2 = b.thread("total", body=total)
    b.depends(t1, t2, "all")
    return b.build()


def test_native_functional_result():
    res = NativeRuntime(parallel_sum_program(16), nkernels=3).run()
    assert res.env.get("total") == sum((i + 1) ** 2 for i in range(16))
    assert res.platform == "native"
    assert res.wall_seconds > 0


def test_native_single_kernel():
    res = NativeRuntime(parallel_sum_program(8), nkernels=1).run()
    assert res.env.get("total") == sum((i + 1) ** 2 for i in range(8))


def test_native_multi_block():
    res = NativeRuntime(parallel_sum_program(12), nkernels=4, tsu_capacity=5).run()
    assert res.env.get("total") == sum((i + 1) ** 2 for i in range(12))


def test_native_round_robin_placement():
    res = NativeRuntime(
        parallel_sum_program(12), nkernels=4, placement=round_robin_placement
    ).run()
    assert res.env.get("total") == sum((i + 1) ** 2 for i in range(12))


def test_native_tub_statistics():
    res = NativeRuntime(parallel_sum_program(16), nkernels=4).run()
    assert res.counters["tub.pushes"] == 17  # 16 workers + reduce
    assert res.counters["emulator.items"] == 17  # every push is drained
    assert res.counters["tsu.dispatched"] == 17


def test_native_per_kernel_utilisation_is_real():
    """The native backend accounts real wall time per kernel: the core
    stats must be populated (µs) and the busy share non-zero."""
    res = NativeRuntime(parallel_sum_program(32), nkernels=2).run()
    assert sum(k.dthreads for k in res.kernels) == 33
    busy = sum(k.core.busy_cycles for k in res.kernels)
    assert busy > 0
    for k in res.kernels:
        assert k.core.dthreads_executed == k.dthreads
    assert 0.0 < res.utilisation() <= 1.0


def test_native_dependency_ordering():
    """A three-stage pipeline must observe strict ordering per index."""
    n = 8
    b = ProgramBuilder("pipe")
    b.env.alloc("a", n)
    b.env.alloc("b", n)
    b.env.alloc("c", n)

    t1 = b.thread("s1", body=lambda env, i: env.array("a").__setitem__(i, i + 1), contexts=n)
    t2 = b.thread(
        "s2", body=lambda env, i: env.array("b").__setitem__(i, env.array("a")[i] * 2),
        contexts=n,
    )
    t3 = b.thread(
        "s3", body=lambda env, i: env.array("c").__setitem__(i, env.array("b")[i] + 1),
        contexts=n,
    )
    b.depends(t1, t2)
    b.depends(t2, t3)
    res = NativeRuntime(b.build(), nkernels=4).run()
    np.testing.assert_array_equal(res.env.array("c"), (np.arange(n) + 1) * 2 + 1)


def test_native_worker_exception_propagates():
    b = ProgramBuilder("boom")

    def bad(env, _):
        raise ValueError("kaboom")

    b.thread("bad", body=bad)
    with pytest.raises(RuntimeError, match="DDM execution failed"):
        NativeRuntime(b.build(), nkernels=2).run()


def test_native_single_use():
    rt = NativeRuntime(parallel_sum_program(4), nkernels=2)
    rt.run()
    with pytest.raises(RuntimeError):
        rt.run()


def test_native_many_kernels_small_program():
    """More kernels than DThreads must not deadlock."""
    res = NativeRuntime(parallel_sum_program(2), nkernels=8).run()
    assert res.env.get("total") == 1 + 4


def test_native_stress_many_threads():
    res = NativeRuntime(parallel_sum_program(200), nkernels=6).run()
    assert res.env.get("total") == sum((i + 1) ** 2 for i in range(200))
