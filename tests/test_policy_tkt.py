"""Property tests for placement policies and the (node-extended) TKT.

Satellite coverage for the TFluxDist tentpole: placement is what decides
how much TSU traffic crosses the network, so its basic contracts —
every block instance assigned to exactly one in-range kernel, template
``affinity`` overrides always honoured, contiguous chunks actually
contiguous — get pinned here, together with the
:class:`~repro.tsu.tkt.NodeThreadToKernelTable` round trip that the
distributed post-processing relies on.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core import ProgramBuilder
from repro.tsu.policy import contiguous_placement, round_robin_placement
from repro.tsu.tkt import NodeThreadToKernelTable, ThreadToKernelTable

POLICIES = {
    "contiguous": contiguous_placement,
    "round_robin": round_robin_placement,
}


def build_block(widths, affinities=None, tsu_capacity=None):
    """One program of len(widths) independent templates; first block."""
    affinities = affinities or {}
    b = ProgramBuilder("placement")
    b.env.alloc("out", max(sum(widths), 1))
    for j, w in enumerate(widths):
        b.thread(
            f"s{j}",
            body=lambda env, i: None,
            contexts=w,
            affinity=affinities.get(j),
        )
    blocks = b.build().blocks(tsu_capacity)
    return blocks[0]


@st.composite
def placement_cases(draw):
    widths = draw(
        st.lists(st.integers(min_value=1, max_value=17), min_size=1, max_size=4)
    )
    nkernels = draw(st.integers(min_value=1, max_value=9))
    return widths, nkernels


# -- partition: every instance placed exactly once, in range -------------------
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@given(case=placement_cases())
def test_placement_partitions_block_exactly(policy_name, case):
    widths, nkernels = case
    block = build_block(widths)
    assignment = POLICIES[policy_name](block, nkernels)
    assert len(assignment) == block.size
    assert all(0 <= k < nkernels for k in assignment)
    # Partition property through the TKT: threads_of(k) over all kernels
    # is a disjoint cover of the block's local ids.
    tkt = ThreadToKernelTable(assignment, nkernels)
    covered = [i for k in range(nkernels) for i in tkt.threads_of(k)]
    assert sorted(covered) == list(range(block.size))


@given(case=placement_cases())
def test_contiguous_chunks_are_contiguous_and_balanced(case):
    """Per template: kernel ids are non-decreasing over context order and
    chunk sizes differ by at most one (modulo the floor formula)."""
    widths, nkernels = case
    block = build_block(widths)
    assignment = contiguous_placement(block, nkernels)
    by_template = {}
    for local_iid, inst in enumerate(block.instances):
        by_template.setdefault(inst.template.tid, []).append(assignment[local_iid])
    for kernels in by_template.values():
        assert kernels == sorted(kernels)
        counts = [kernels.count(k) for k in range(nkernels)]
        nonzero = [c for c in counts if c]
        assert max(nonzero) - min(nonzero) <= 1


@given(case=placement_cases())
def test_round_robin_is_cyclic(case):
    widths, nkernels = case
    block = build_block(widths)
    assignment = round_robin_placement(block, nkernels)
    pos_by_template = {}
    for local_iid, inst in enumerate(block.instances):
        pos = pos_by_template.setdefault(inst.template.tid, [0])
        assert assignment[local_iid] == pos[0] % nkernels
        pos[0] += 1


# -- affinity overrides --------------------------------------------------------
@pytest.mark.parametrize("policy_name", sorted(POLICIES))
@given(
    case=placement_cases(),
    pin=st.integers(min_value=0, max_value=100),
)
def test_affinity_override_wins(policy_name, case, pin):
    """A template with an affinity callable is placed exactly where it
    says (mod nkernels), whatever the policy would have chosen."""
    widths, nkernels = case
    block = build_block(widths, affinities={0: lambda ctx, n, pin=pin: pin})
    assignment = POLICIES[policy_name](block, nkernels)
    for local_iid, inst in enumerate(block.instances):
        if inst.template.name == "s0":
            assert assignment[local_iid] == pin % nkernels


# -- the node-extended TKT -----------------------------------------------------
@st.composite
def node_tables(draw):
    nkernels = draw(st.integers(min_value=1, max_value=12))
    nnodes = draw(st.integers(min_value=1, max_value=nkernels))
    assignment = draw(
        st.lists(
            st.integers(min_value=0, max_value=nkernels - 1),
            min_size=1,
            max_size=40,
        )
    )
    return assignment, nkernels, nnodes


@given(table=node_tables())
def test_node_tkt_round_trips(table):
    """instance → (node, kernel) must agree with the base table and with
    the contiguous kernel→node partition, and recover the base table."""
    assignment, nkernels, nnodes = table
    base = ThreadToKernelTable(assignment, nkernels)
    node_tkt = NodeThreadToKernelTable.from_table(base, nnodes)
    assert node_tkt.assignment == base.assignment
    assert len(node_tkt) == len(base)
    for local_iid in range(len(base)):
        node, kernel = node_tkt.placement_of(local_iid)
        assert kernel == base.kernel_of(local_iid)
        assert node == node_tkt.node_of(local_iid)
        assert node == kernel * nnodes // nkernels
        assert kernel in node_tkt.kernels_of_node(node)


@given(table=node_tables())
def test_node_tkt_kernel_partition_covers_all_nodes(table):
    assignment, nkernels, nnodes = table
    node_tkt = NodeThreadToKernelTable(assignment, nkernels, nnodes)
    covered = [k for n in range(nnodes) for k in node_tkt.kernels_of_node(n)]
    assert sorted(covered) == list(range(nkernels))
    # Contiguity: each node owns one unbroken kernel range.
    for n in range(nnodes):
        ks = node_tkt.kernels_of_node(n)
        assert ks == list(range(ks[0], ks[-1] + 1))
        assert ks  # nnodes <= nkernels: nobody is empty


def test_node_tkt_rejects_bad_node_counts():
    base = ThreadToKernelTable([0, 1, 0], 2)
    with pytest.raises(ValueError):
        NodeThreadToKernelTable.from_table(base, 0)
    with pytest.raises(ValueError):
        NodeThreadToKernelTable.from_table(base, 3)
