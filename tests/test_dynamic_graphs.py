"""Dynamic graphs: Subflow spawning, conditional arcs, squash, reuse.

Covers the graph-epoch model end to end: cond-arc semantics (diamond
join via phantom decrements, transitive dead chains, cross-block
squash-at-load), spawn mechanics and counters, the static≡dynamic
schedule equivalence, the recursive apps on every backend, and the
single-run guard (:class:`~repro.core.ProgramReusedError`).
"""

import os

import numpy as np
import pytest

from repro.apps import get_benchmark
from repro.apps.common import ProblemSize
from repro.core import ProgramBuilder, ProgramReusedError
from repro.core.dynamic import Subflow
from repro.platforms.dist import TFluxDist
from repro.platforms.hard import TFluxHard
from repro.platforms.soft import TFluxSoft
from repro.runtime.native import NativeRuntime
from repro.runtime.simdriver import SimulatedRuntime, run_sequential_timed
from repro.sim.engine import ENV_FASTPATH
from repro.sim.machine import BAGLE_27

# -- builders (fresh per run: programs are single-use) -------------------------


def build_spawn_tree(depth=3):
    """A binary spawn tree writing one leaf slot per path."""
    nleaves = 2 ** depth
    b = ProgramBuilder("spawntree")
    b.env.alloc("leaves", nleaves)

    def make_node(lo, hi):
        def body(env, _ctx):
            if hi - lo == 1:
                env.array("leaves")[lo] = lo + 1
                return None
            mid = (lo + hi) // 2
            sf = Subflow(f"split[{lo}:{hi}]")
            sf.thread(f"node[{lo}:{mid}]", body=make_node(lo, mid))
            sf.thread(f"node[{mid}:{hi}]", body=make_node(mid, hi))
            return sf

        return body

    b.thread("node[root]", body=make_node(0, nleaves))
    b.epilogue(
        "sum", body=lambda env: env.set("total", float(env.array("leaves").sum()))
    )
    return b.build()


def build_diamond(key):
    """pick --cond--> left|right --> join; right also feeds a dead chain."""
    b = ProgramBuilder("diamond")
    b.env.alloc("out", 5)

    def w(slot, value):
        return lambda env, _ctx: env.array("out").__setitem__(slot, value)

    t_pick = b.thread("pick", body=lambda env, _ctx: key)
    t_left = b.thread("left", body=w(0, 1))
    t_right = b.thread("right", body=w(1, 2))
    t_rdead = b.thread("rdead", body=w(2, 3))  # dies with right
    t_join = b.thread("join", body=w(3, 7))
    b.cond(t_pick, t_left, 1)
    b.cond(t_pick, t_right, 2)
    b.depends(t_right, t_rdead)
    b.depends(t_left, t_join)
    b.depends(t_right, t_join)
    return b.build()


# -- conditional arcs ----------------------------------------------------------
@pytest.mark.parametrize("key,expected", [(1, [1, 0, 0, 7, 0]), (2, [0, 2, 3, 7, 0])])
def test_diamond_join_fires_on_either_branch(key, expected):
    env = build_diamond(key).run_sequential()
    assert env.array("out").tolist() == expected


@pytest.mark.parametrize("nkernels", [1, 4])
def test_squash_is_schedule_independent(nkernels):
    res = SimulatedRuntime(build_diamond(1), BAGLE_27, nkernels=nkernels).run()
    assert res.env.array("out").tolist() == [1, 0, 0, 7, 0]
    # right + rdead die; join fires through the phantom decrement.
    assert res.counters["tsu.squashed"] == 2


def test_unmatched_key_squashes_every_branch():
    env = build_diamond(99).run_sequential()
    # Neither branch chosen: left, right, rdead die — and join, all of
    # whose inputs are now dead, squashes transitively too.
    assert env.array("out").tolist() == [0, 0, 0, 0, 0]


def test_cross_block_squash_at_load():
    """A cond consumer in a *later* block is retired when its block's
    Inlet loads (squash-at-load), not lost."""
    b = ProgramBuilder("xblock")
    b.env.alloc("out", 4)
    t_pick = b.thread("pick", body=lambda env, _ctx: 1)
    t_fill = b.thread(
        "fill", body=lambda env, i: env.array("out").__setitem__(i, i), contexts=3
    )
    t_live = b.thread("live", body=lambda env, _ctx: env.set("live", True))
    t_dead = b.thread("dead", body=lambda env, _ctx: env.set("dead", True))
    b.cond(t_pick, t_live, 1)
    b.cond(t_pick, t_dead, 2)
    prog = b.build()
    # Capacity 4 puts pick+fill in block 0, live+dead in block 1.
    res = SimulatedRuntime(prog, BAGLE_27, nkernels=2, tsu_capacity=4).run()
    assert res.env.get("live") is True
    assert res.env.get("dead", None) is None
    assert res.counters["tsu.squashed"] == 1


def test_builder_rejects_none_cond_key():
    b = ProgramBuilder("bad")
    t1 = b.thread("a", body=lambda env, _ctx: None)
    t2 = b.thread("b", body=lambda env, _ctx: None)
    with pytest.raises(ValueError, match="cond key"):
        b.cond(t1, t2, None)


# -- subflow spawning ----------------------------------------------------------
def test_spawn_tree_all_backends_agree():
    expected = np.arange(1, 9, dtype=np.float64)
    fingerprints = []
    for run in (
        lambda: build_spawn_tree().run_sequential(),
        lambda: SimulatedRuntime(build_spawn_tree(), BAGLE_27, nkernels=4).run().env,
        lambda: NativeRuntime(build_spawn_tree(), nkernels=4).run().env,
    ):
        env = run()
        np.testing.assert_array_equal(env.array("leaves"), expected)
        fingerprints.append((env.array("leaves").tobytes(), env.get("total")))
    assert fingerprints[0] == fingerprints[1] == fingerprints[2]


def test_spawn_counters():
    res = SimulatedRuntime(build_spawn_tree(depth=3), BAGLE_27, nkernels=2).run()
    # A binary tree over 8 leaves spawns one subflow per internal node.
    assert res.counters["tsu.spawns"] == 7
    assert res.counters["tsu.dynamic_blocks"] == 7
    assert res.counters["tsu.squashed"] == 0


def test_static_programs_report_zero_dynamic_counters():
    b = ProgramBuilder("static")
    b.thread("only", body=lambda env, _ctx: env.set("x", 1))
    res = SimulatedRuntime(b.build(), BAGLE_27, nkernels=1).run()
    assert res.counters["tsu.spawns"] == 0
    assert res.counters["tsu.dynamic_blocks"] == 0
    assert res.counters["tsu.squashed"] == 0


def test_sequential_accounting_holds_for_dynamic_programs():
    res = run_sequential_timed(build_spawn_tree(), BAGLE_27)
    (k,) = res.kernels
    assert k.dthreads == res.total_dthreads
    assert k.fetches == k.dthreads + 1
    assert k.waits == 0


# -- static ≡ dynamic schedule equivalence -------------------------------------
def test_dynamic_unrolling_matches_static_schedule():
    """A spawned stage shaped exactly like a pre-built one schedules
    cycle-for-cycle identically under a free transport (the
    bench_dynamic_graphs claim, pinned small here)."""
    cap, work = 4, 1000

    def build_static():
        b = ProgramBuilder("s")
        b.env.alloc("out", 2 * cap)
        t1 = b.thread(
            "head",
            body=lambda env, i: env.array("out").__setitem__(i, i),
            contexts=cap,
            cost=lambda env, _c: work,
        )
        t2 = b.thread(
            "tail",
            body=lambda env, i: env.array("out").__setitem__(cap + i, cap + i),
            contexts=cap,
            cost=lambda env, _c: work,
        )
        b.depends(t1, t2, "all")
        return b.build()

    def build_dynamic():
        b = ProgramBuilder("d")
        b.env.alloc("out", 2 * cap)

        def head(env, i):
            env.array("out")[i] = i
            if i != 0:
                return None
            sf = Subflow("tail")
            sf.thread(
                "tail",
                body=lambda env, j: env.array("out").__setitem__(cap + j, cap + j),
                contexts=cap,
                cost=lambda env, _c: work,
            )
            return sf

        b.thread("head", body=head, contexts=cap, cost=lambda env, _c: work)
        return b.build()

    stat = SimulatedRuntime(build_static(), BAGLE_27, nkernels=4, tsu_capacity=cap).run()
    dyn = SimulatedRuntime(build_dynamic(), BAGLE_27, nkernels=4, tsu_capacity=cap).run()
    assert dyn.cycles == stat.cycles
    assert dyn.region_cycles == stat.region_cycles
    np.testing.assert_array_equal(stat.env.array("out"), dyn.env.array("out"))


# -- single-run guard ----------------------------------------------------------
def test_program_reuse_rejected_sequential():
    prog = build_diamond(1)
    prog.run_sequential()
    with pytest.raises(ProgramReusedError):
        prog.run_sequential()


def test_program_reuse_rejected_across_runtimes():
    prog = build_spawn_tree()
    SimulatedRuntime(prog, BAGLE_27, nkernels=2).run()
    with pytest.raises(ProgramReusedError):
        SimulatedRuntime(prog, BAGLE_27, nkernels=2).run()
    with pytest.raises(ProgramReusedError):
        NativeRuntime(prog, nkernels=2).run()
    with pytest.raises(ProgramReusedError):
        run_sequential_timed(prog, BAGLE_27)


# -- the recursive apps --------------------------------------------------------
_TINY_QSORT = ProblemSize("qsort_rec", "S", "tiny", {"n": 1500})
_TINY_QUAD = ProblemSize("quad", "S", "tiny", {"eps": 1e-3})


def _qsort_prog():
    return get_benchmark("qsort_rec").build(_TINY_QSORT, unroll=8)


def test_qsort_rec_platforms_agree():
    bench = get_benchmark("qsort_rec")
    outs = []
    for run in (
        lambda: _qsort_prog().run_sequential(),
        lambda: TFluxHard().execute(_qsort_prog(), nkernels=4).env,
        lambda: TFluxSoft().execute(_qsort_prog(), nkernels=4).env,
        lambda: NativeRuntime(_qsort_prog(), nkernels=4).run().env,
        lambda: TFluxDist(nnodes=2).execute(_qsort_prog(), nkernels=4).env,
    ):
        env = run()
        bench.verify(env, _TINY_QSORT)
        outs.append(env.array("data").tobytes())
    assert len(set(outs)) == 1


def test_qsort_rec_dist_fastpath_agrees():
    """The acceptance gate: recursive QSORT on TFluxDist with the DES
    fast path on and off — cycles and non-engine counters identical."""
    def go():
        return TFluxDist(nnodes=2).execute(_qsort_prog(), nkernels=4)

    old = os.environ.get(ENV_FASTPATH)
    try:
        os.environ[ENV_FASTPATH] = "1"
        fast = go()
        os.environ[ENV_FASTPATH] = "0"
        slow = go()
    finally:
        if old is None:
            os.environ.pop(ENV_FASTPATH, None)
        else:
            os.environ[ENV_FASTPATH] = old
    assert fast.cycles == slow.cycles
    assert fast.region_cycles == slow.region_cycles
    fast_c = {k: v for k, v in fast.counters.as_dict().items()
              if not k.startswith("engine.")}
    slow_c = {k: v for k, v in slow.counters.as_dict().items()
              if not k.startswith("engine.")}
    assert fast_c == slow_c


def test_quad_adaptive_refinement():
    bench = get_benchmark("quad")
    res = TFluxHard().execute(bench.build(_TINY_QUAD), nkernels=4)
    bench.verify(res.env, _TINY_QUAD)
    # The peaked integrand must actually refine (spawn), and the cond
    # tail squashes exactly the branch the root did not take.
    assert res.counters["tsu.spawns"] > 0
    assert res.counters["tsu.squashed"] == 1


# -- preprocessor surface ------------------------------------------------------
def test_pragma_spawn_and_cond_end_to_end():
    from repro.preprocessor import compile_to_program

    src = """
#pragma ddm startprogram name(dynpragma)
#pragma ddm var double parts[4]
#pragma ddm var int mode

#pragma ddm subflow name(refine)
#pragma ddm thread 1 context(4)
  parts[CTX] = parts[CTX] * 2.0;
#pragma ddm endthread
#pragma ddm thread 2 depends(1 all)
  mode = mode + 10;
#pragma ddm endthread
#pragma ddm endsubflow

#pragma ddm thread 1 context(4)
  parts[CTX] = CTX + 1;
#pragma ddm endthread

#pragma ddm thread 2 depends(1 all)
  if (parts[3] > 2.0) {
    DDMSPAWN = refine;
  } else {
    DDMCHOICE = 1;
  }
#pragma ddm endthread

#pragma ddm thread 3 cond(2 1)
  mode = 1;
#pragma ddm endthread
#pragma ddm endprogram
"""
    prog = compile_to_program(src)
    res = SimulatedRuntime(prog, BAGLE_27, nkernels=2).run()
    # parts[3] = 4 > 2: thread 2 spawns (outcome = Subflow, no branch
    # key), so thread 3 is squashed and the subflow doubles + flags.
    np.testing.assert_array_equal(
        res.env.array("parts"), np.array([2.0, 4.0, 6.0, 8.0])
    )
    assert res.env.get("mode") == 10
    assert res.counters["tsu.spawns"] == 1
    assert res.counters["tsu.squashed"] == 1
