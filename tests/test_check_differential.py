"""Race-check instrumentation is timing-neutral and backend-portable.

The functional/timing split means the recording wrapper may only touch
the functional side: all cycle numbers come from cost models over the
*declared* access summaries, which the wrapper evaluates on the raw
environment in the same order the simulated driver does.  These tests
pin that claim differentially — the same program simulated plain and
instrumented must agree cycle for cycle and byte for byte — across the
static, dynamic-spawn and conditional-squash program shapes of the
backend-differential suite, and on the native (OS-thread) backend where
attribution is per-thread.
"""

import numpy as np
import pytest

from repro.apps import get_benchmark
from repro.apps.common import ProblemSize
from repro.check import instrument
from repro.core import ProgramBuilder
from repro.core.dynamic import Subflow
from repro.runtime.native import NativeRuntime
from repro.runtime.simdriver import SimulatedRuntime
from repro.sim.machine import BAGLE_27

NKERNELS = 4


def build_trapez():
    size = ProblemSize("trapez", "S", "t", {"k": 12})
    return get_benchmark("trapez").build(size, unroll=8)


def build_dynspawn():
    """A data-driven spawn tree: subflow epochs + spawn edges."""
    nleaves = 8
    b = ProgramBuilder("dynspawn")
    b.env.alloc("leaves", nleaves)

    def make_node(lo, hi):
        def body(env, _ctx):
            if hi - lo == 1:
                env.array("leaves")[lo] = lo + 1
                return None
            mid = (lo + hi) // 2
            sf = Subflow(f"split[{lo}:{hi}]")
            sf.thread(f"node[{lo}:{mid}]", body=make_node(lo, mid))
            sf.thread(f"node[{mid}:{hi}]", body=make_node(mid, hi))
            return sf

        return body

    b.thread("node[root]", body=make_node(0, nleaves))
    b.epilogue(
        "sum", body=lambda env: env.set("total", float(env.array("leaves").sum()))
    )
    return b.build()


def build_dyncond():
    """A conditional diamond with a squashed chain: recorded runs must
    squash the very same instances."""
    b = ProgramBuilder("dyncond")
    b.env.alloc("out", 5)

    def w(slot, value):
        return lambda env, _ctx: env.array("out").__setitem__(slot, value)

    t_pick = b.thread("pick", body=lambda env, _ctx: 1)
    t_left = b.thread("left", body=w(0, 1))
    t_right = b.thread("right", body=w(1, 2))
    t_rdead = b.thread("rdead", body=w(2, 3))
    t_join = b.thread("join", body=w(3, 7))
    b.cond(t_pick, t_left, 1)
    b.cond(t_pick, t_right, 2)
    b.depends(t_right, t_rdead)
    b.depends(t_left, t_join)
    b.depends(t_right, t_join)
    return b.build()


BUILDERS = {
    "trapez": build_trapez,
    "dynspawn": build_dynspawn,
    "dyncond": build_dyncond,
}


def env_fingerprint(env):
    fp = {}
    for name in env.names():
        value = env[name]
        fp[name] = value.tobytes() if isinstance(value, np.ndarray) else value
    return fp


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_sim_cycles_identical_with_checking(name):
    builder = BUILDERS[name]
    plain = SimulatedRuntime(builder(), BAGLE_27, nkernels=NKERNELS).run()

    prog = builder()
    session = instrument(prog)
    checked = SimulatedRuntime(prog, BAGLE_27, nkernels=NKERNELS).run()

    assert checked.cycles == plain.cycles  # bit-identical timing
    assert env_fingerprint(checked.env) == env_fingerprint(plain.env)
    assert checked.total_dthreads == plain.total_dthreads
    report = session.report()
    assert report.ok, report.format()
    assert report.instances_recorded == checked.total_dthreads


@pytest.mark.parametrize("name", sorted(BUILDERS))
def test_native_backend_records_clean(name):
    """OS-thread execution: concurrent bodies must attribute their ops to
    the right instance (thread-local state), and recording must not
    perturb the functional output."""
    builder = BUILDERS[name]
    baseline = builder()
    baseline.run_sequential()

    prog = builder()
    session = instrument(prog)
    result = NativeRuntime(prog, nkernels=NKERNELS).run()

    assert env_fingerprint(result.env) == env_fingerprint(baseline.env)
    report = session.report()
    assert report.ok, report.format()
    assert report.instances_recorded == result.total_dthreads
