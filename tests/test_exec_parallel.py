"""repro.exec: parallel/serial equivalence and the on-disk result cache.

The executor's contract is that *how* a sweep runs (in-process, through a
worker pool, or out of the cache) never changes a single cycle number.
These tests pin that contract on a reduced grid, plus the cache-key
semantics: any cost-model parameter change must invalidate.
"""

import dataclasses

import pytest

from repro.apps import problem_sizes
from repro.exec import (
    EvalRequest,
    JobSpec,
    ResultCache,
    clear_baseline_memo,
    evaluate_many,
    run_job,
    run_jobs,
    spec_digest,
)
from repro.platforms import TFluxHard

UNROLLS = (2, 8)


def _request(nkernels: int = 4) -> EvalRequest:
    return EvalRequest(
        platform=TFluxHard(),
        bench="trapez",
        size=problem_sizes("trapez", "S")["small"],
        nkernels=nkernels,
        unrolls=UNROLLS,
        verify=True,
        max_threads=256,
    )


def _spec(unroll: int = 4, **overrides) -> JobSpec:
    base = dict(
        platform=TFluxHard(),
        bench="trapez",
        size=problem_sizes("trapez", "S")["small"],
        nkernels=4,
        unroll=unroll,
        max_threads=256,
        mode="execute",
    )
    base.update(overrides)
    return JobSpec(**base)


def _key_fields(ev):
    return (
        ev.speedup,
        ev.best_unroll,
        ev.parallel_cycles,
        ev.sequential_cycles,
        ev.per_unroll,
    )


def test_parallel_pool_is_bit_identical_to_serial(monkeypatch):
    monkeypatch.delenv("TFLUX_JOBS", raising=False)
    monkeypatch.delenv("TFLUX_CACHE_DIR", raising=False)
    serial = evaluate_many([_request()], jobs=1, cache=None)[0]
    monkeypatch.setenv("TFLUX_JOBS", "4")
    parallel = evaluate_many([_request()], cache=None)[0]
    assert _key_fields(parallel) == _key_fields(serial)


def test_sweep_figure_parallel_matches_serial(monkeypatch):
    """The satellite contract: ``sweep_figure`` under ``TFLUX_JOBS=4``
    produces bit-identical Evaluation cycle counts to the serial path."""
    from repro.analysis import sweep_figure

    def grid():
        return sweep_figure(
            TFluxHard(),
            benches=("trapez", "fft"),
            kernel_counts=(2, 4),
            sizes=("small",),
            unrolls=UNROLLS,
            max_threads=256,
        )

    monkeypatch.delenv("TFLUX_JOBS", raising=False)
    monkeypatch.delenv("TFLUX_CACHE_DIR", raising=False)
    serial = grid()
    monkeypatch.setenv("TFLUX_JOBS", "4")
    parallel = grid()
    assert serial.cells.keys() == parallel.cells.keys()
    for key in serial.cells:
        assert _key_fields(serial.cells[key]) == _key_fields(parallel.cells[key])


def test_run_jobs_order_is_submission_order():
    specs = [_spec(unroll=u) for u in (8, 2, 4)]
    outcomes = run_jobs(specs, jobs=1, cache=None)
    singles = [run_job(s) for s in specs]
    assert [o.region_cycles for o in outcomes] == [
        s.region_cycles for s in singles
    ]


def test_cache_round_trip_is_bit_identical(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    cold = run_jobs([spec], jobs=1, cache=cache)[0]
    assert cache.stores == 1 and cache.misses == 1
    warm = run_jobs([spec], jobs=1, cache=cache)[0]
    assert cache.hits == 1
    assert warm.cycles == cold.cycles
    assert warm.region_cycles == cold.region_cycles
    assert warm.result.counters == cold.result.counters


def test_cached_results_never_carry_program_state(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec(verify=True)
    run_jobs([spec], jobs=1, cache=cache)
    warm = run_jobs([spec], jobs=1, cache=cache)[0]
    # Records are env-free by construction: only timing artefacts cross
    # the cache boundary, never program state.
    assert not hasattr(warm.result, "env")


def test_stale_schema_version_is_a_cache_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    digest = spec_digest(spec)
    outcome = run_jobs([spec], jobs=1, cache=cache)[0]
    stale = dataclasses.replace(
        outcome, result=dataclasses.replace(outcome.result, schema_version=0)
    )
    cache.put(digest, stale)
    assert cache.get(digest) is None  # refuses to deserialise silently


def test_cache_env_knob(tmp_path, monkeypatch):
    monkeypatch.setenv("TFLUX_CACHE_DIR", str(tmp_path))
    spec = _spec()
    run_jobs([spec], jobs=1)
    # A fresh call resolves the same cache from the environment and hits.
    cache = ResultCache(tmp_path)
    assert cache.get(spec_digest(spec)) is not None


def test_cost_parameter_change_invalidates():
    """The digest covers the platform's cost-model state: a changed TSU
    latency is a different simulation and must be a cache miss."""
    fast = _spec()
    slow = dataclasses.replace(fast, platform=TFluxHard(tsu_processing_cycles=8))
    assert spec_digest(fast) != spec_digest(slow)


def test_spec_parameters_all_reach_the_digest():
    base = _spec()
    for change in (
        dict(unroll=16),
        dict(nkernels=8),
        dict(max_threads=512),
        dict(tsu_capacity=64),
        dict(allow_stealing=True),
        dict(exact_memory=True),
        dict(collect_spans=True),
        dict(mode="evaluate"),
        dict(size=problem_sizes("trapez", "S")["large"]),
    ):
        other = dataclasses.replace(base, **change)
        assert spec_digest(base) != spec_digest(other), change


def test_digest_is_stable_across_calls():
    assert spec_digest(_spec()) == spec_digest(_spec())


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    digest = spec_digest(spec)
    run_jobs([spec], jobs=1, cache=cache)
    path = cache._path(digest)
    path.write_bytes(b"not a pickle")
    assert cache.get(digest) is None


def test_capture_errors_round_trips_through_cache(tmp_path):
    cache = ResultCache(tmp_path)
    # An impossible kernel count raises; capture_errors turns it into data.
    spec = _spec(nkernels=10_000, capture_errors=True)
    cold = run_jobs([spec], jobs=1, cache=cache)[0]
    warm = run_jobs([spec], jobs=1, cache=cache)[0]
    assert cold.error is not None
    assert warm.error == cold.error


def _count_baseline_runs(monkeypatch):
    """Instrument the sequential timing entry point with a call counter."""
    import repro.platforms.base as base

    calls = []
    real = base.run_sequential_timed

    def counting(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(base, "run_sequential_timed", counting)
    return calls


def test_baseline_simulated_once_per_cell(monkeypatch):
    """The §5 baseline is the canonical unroll=1 program: one sweep cell
    simulates it exactly once regardless of the unroll grid, and repeat
    batches for the same cell (e.g. a kernel-count curve) hit the
    in-process memo instead of re-simulating."""
    clear_baseline_memo()
    calls = _count_baseline_runs(monkeypatch)
    evaluate_many([_request(nkernels=2), _request(nkernels=4)], jobs=1, cache=None)
    assert len(calls) == 1  # both cells share one (platform, bench, size)
    evaluate_many([_request(nkernels=8)], jobs=1, cache=None)
    assert len(calls) == 1  # memo hit across batches
    clear_baseline_memo()
    evaluate_many([_request(nkernels=8)], jobs=1, cache=None)
    assert len(calls) == 2


def test_baseline_is_the_unroll1_program(monkeypatch):
    """sequential_cycles must equal the standalone unroll=1 baseline."""
    clear_baseline_memo()
    ev = evaluate_many([_request()], jobs=1, cache=None)[0]
    seq = run_job(_spec(unroll=1, nkernels=1, verify=False, mode="sequential"))
    assert ev.sequential_cycles == seq.seq_cycles


def test_job_count_parsing(monkeypatch):
    from repro.exec import job_count

    monkeypatch.delenv("TFLUX_JOBS", raising=False)
    assert job_count() == 1
    monkeypatch.setenv("TFLUX_JOBS", "0")
    assert job_count() == 1
    monkeypatch.setenv("TFLUX_JOBS", "6")
    assert job_count() == 6
    monkeypatch.setenv("TFLUX_JOBS", "auto")
    assert job_count() >= 1
    monkeypatch.setenv("TFLUX_JOBS", "-2")
    with pytest.raises(ValueError):
        job_count()
    assert job_count(jobs=3) == 3  # explicit argument wins


def test_baseline_memo_is_single_flight_across_threads(monkeypatch):
    """Concurrent evaluate_many calls for one cell (the serve layer's
    request handlers race exactly like this) agree on a single baseline
    simulation: one owner computes, the others block on its future."""
    import threading

    clear_baseline_memo()
    calls = _count_baseline_runs(monkeypatch)
    req = dataclasses.replace(_request(nkernels=2), unrolls=(1,))
    barrier = threading.Barrier(4)
    results, errors = [], []

    def worker():
        barrier.wait()
        try:
            results.append(evaluate_many([req], jobs=1, cache=None)[0])
        except Exception as exc:  # pragma: no cover - diagnostic
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert len(calls) == 1  # exactly one baseline despite the 4-way race
    assert len({ev.sequential_cycles for ev in results}) == 1
    clear_baseline_memo()


def test_baseline_memo_capacity_bound(monkeypatch):
    """The memo is LRU-bounded: a long-running server sweeping many
    platform configurations cannot grow it without limit."""
    from repro.exec import pool

    clear_baseline_memo()
    monkeypatch.setattr(pool._BASELINE_MEMO, "capacity", 2)
    for i in range(5):
        fut, owner = pool._BASELINE_MEMO.claim(f"digest{i}")
        assert owner
        pool._BASELINE_MEMO.fill(f"digest{i}", f"outcome{i}")
        assert fut.result() == f"outcome{i}"
    assert len(pool._BASELINE_MEMO) == 2
    assert "digest4" in pool._BASELINE_MEMO
    assert "digest0" not in pool._BASELINE_MEMO
    clear_baseline_memo()
    assert len(pool._BASELINE_MEMO) == 0


def test_baseline_memo_failure_not_cached():
    """A failed baseline propagates to coalesced waiters but is never
    retained — the next claim recomputes."""
    from repro.exec import pool

    clear_baseline_memo()
    fut, owner = pool._BASELINE_MEMO.claim("d")
    assert owner
    fut2, owner2 = pool._BASELINE_MEMO.claim("d")
    assert not owner2 and fut2 is fut
    pool._BASELINE_MEMO.fail("d", RuntimeError("sim died"))
    with pytest.raises(RuntimeError):
        fut2.result()
    assert "d" not in pool._BASELINE_MEMO
    fut3, owner3 = pool._BASELINE_MEMO.claim("d")
    assert owner3 and fut3 is not fut
    pool._BASELINE_MEMO.fill("d", "ok")
    clear_baseline_memo()
