"""Meta-validation: declared access summaries match what bodies touch.

Cost models are only trustworthy if the declared memory behaviour tracks
the functional behaviour.  These tests compare each app's declared
bytes-read/bytes-written against the array slices its body actually
addresses (computed from the decomposition arithmetic).
"""

import numpy as np
import pytest

from repro.apps import get_benchmark
from repro.apps.common import ProblemSize, chunk_bounds

SIZES = {
    "trapez": ProblemSize("trapez", "S", "t", {"k": 12}),
    "mmult": ProblemSize("mmult", "S", "t", {"n": 32}),
    "qsort": ProblemSize("qsort", "S", "t", {"n": 1500}),
    "susan": ProblemSize("susan", "S", "t", {"w": 64, "h": 32}),
    "fft": ProblemSize("fft", "S", "t", {"n": 16}),
}


def declared(prog):
    """(bytes_read, bytes_written) per instance name, single sweep."""
    env = prog.env
    out = {}
    for inst in prog.expanded().instances:
        s = inst.template.access_summary(env, inst.ctx)
        reads = sum(op.bytes_touched for op in s if not op.is_write)
        writes = sum(op.bytes_touched for op in s if op.is_write)
        out[inst.name] = (reads, writes)
    return out


def test_mmult_rows_declare_exact_bytes():
    prog = get_benchmark("mmult").build(SIZES["mmult"], unroll=4)
    n = 32
    d = declared(prog)
    for i in range(8):  # 32 rows / unroll 4
        lo, hi = chunk_bounds(n, 8, i)
        rows = hi - lo
        reads, writes = d[f"rows[{i}]"]
        assert reads == rows * n * 8 + n * n * 8  # A slice + all of B
        assert writes == rows * n * 8  # C slice


def test_trapez_chunks_write_one_slot():
    prog = get_benchmark("trapez").build(SIZES["trapez"], unroll=8)
    d = declared(prog)
    for name, (reads, writes) in d.items():
        if name.startswith("chunk"):
            assert reads == 0
            assert writes == 8  # one float64 partial


def test_susan_smooth_reads_halo_writes_band():
    size = SIZES["susan"]
    w, h = 64, 32
    prog = get_benchmark("susan").build(size, unroll=8)
    d = declared(prog)
    nthreads = h // 8
    for i in range(nthreads):
        lo, hi = chunk_bounds(h, nthreads, i)
        rlo, rhi = max(lo - 1, 0), min(hi + 1, h)
        reads, writes = d[f"smooth[{i}]"]
        assert reads == (rhi - rlo) * w * 8
        assert writes == (hi - lo) * w * 8


def test_fft_cols_strided_bytes():
    prog = get_benchmark("fft").build(SIZES["fft"], unroll=4)
    n = 16
    d = declared(prog)
    for i in range(n // 4):
        lo, hi = chunk_bounds(n, n // 4, i)
        width = hi - lo
        reads, writes = d[f"fft_cols[{i}]"]
        # reps multiply bytes in AccessSummary.bytes_read but not in our
        # single-sweep count here: the strided op touches n slabs of
        # width*16 bytes.
        assert reads == n * width * 16
        assert writes == n * width * 16


def test_qsort_sort_covers_whole_array():
    prog = get_benchmark("qsort").build(SIZES["qsort"], unroll=64)
    d = declared(prog)
    n = 1500
    total_sorted = sum(
        w for name, (_r, w) in d.items() if name.startswith("sort[")
    )
    assert total_sorted == n * 8  # every element written exactly once


@pytest.mark.parametrize("name", sorted(SIZES))
def test_declared_writes_cover_produced_arrays(name):
    """Every array an app produces must be written by some declaration."""
    bench = get_benchmark(name)
    prog = bench.build(SIZES[name], unroll=4)
    env = prog.env
    written = set()
    for inst in prog.expanded().instances:
        for op in inst.template.access_summary(env, inst.ctx):
            if op.is_write:
                written.add(op.region.name)
    for section in prog.prologue:
        if section.accesses is not None:
            for op in section.accesses(env):
                if op.is_write:
                    written.add(op.region.name)
    produced = {
        "trapez": {"parts"},
        "mmult": {"A", "B", "C"},
        "qsort": {"data", "tmp"},
        "susan": {"img", "sm", "out"},
        "fft": {"X", "parts"},
    }[name]
    assert produced <= written
