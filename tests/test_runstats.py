"""Tests for the repeated-measurement statistics helper."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.runstats import Measurement, measure_native, summarize
from repro.core import ProgramBuilder
from repro.runtime.native import NativeRuntime


def test_summarize_basic():
    m = summarize([1.0, 2.0, 3.0])
    assert m.mean == 2.0
    assert m.stdev == 1.0
    assert m.n == 3
    # t(2) = 4.303 -> half width = 4.303 * 1 / sqrt(3)
    assert m.ci95_half_width == pytest.approx(4.303 / 3**0.5, rel=1e-6)


def test_summarize_single_sample():
    m = summarize([5.0])
    assert m.mean == 5.0
    assert m.ci95_half_width == float("inf")


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_summarize_constant_samples():
    m = summarize([2.0] * 8)
    assert m.stdev == 0.0
    assert m.ci95_half_width == 0.0
    assert m.relative_ci == 0.0


def test_str_format():
    text = str(summarize([0.001, 0.002, 0.0015]))
    assert "ms" in text and "n=3" in text


@given(st.lists(st.floats(min_value=0.5, max_value=2.0), min_size=2, max_size=40))
def test_ci_contains_mean_and_shrinks(samples):
    m = summarize(samples)
    assert m.ci95_half_width >= 0
    # 1-ULP tolerance: sum()/n can round a hair past the extremes when
    # every sample is identical.
    eps = 1e-12
    assert min(samples) - eps <= m.mean <= max(samples) + eps


def test_measure_native_end_to_end():
    def factory():
        b = ProgramBuilder("stat")
        b.thread("t", body=lambda env, _: env.set("x", 1), contexts=4)
        return NativeRuntime(b.build(), nkernels=2).run()

    m, last = measure_native(factory, runs=3, warmup=1)
    assert m.n == 3
    assert m.mean > 0
    assert last.env.get("x") == 1


def test_measure_native_rejects_zero_runs():
    with pytest.raises(ValueError):
        measure_native(lambda: None, runs=0)
