"""Directory-width edge cases for the two-level (node, core) sharer
directory.

Three families, per the PR-6 contract:

* the two-level layout must produce **bit-identical** cycles and stats
  to the flat single-word mask wherever one word suffices (all ≤63-core
  configs — the old ceiling — plus the new 64-core boundary), exercised
  by forcing extra directory words on machines that do not need them;
* exact/fast cross-validation must hold *past* the old 63-core wall
  (64 and 128 cores) exactly as it does below it;
* the full 64 nodes x 64 cores machine must construct and run.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.accesses import AccessSummary, RegionSpace
from repro.sim.cache import CacheConfig, CoherentMemorySystem, MemoryConfig
from repro.sim.capability import MAX_CORES
from repro.sim.fastcache import FastMemorySystem

L1 = CacheConfig(size=1024, line_size=64, assoc=2, read_latency=2, write_latency=0)
L2 = CacheConfig(size=8192, line_size=64, assoc=4, read_latency=20, write_latency=20)
MEM = MemoryConfig(dram_latency=100, cache_to_cache_latency=40, upgrade_latency=8)


def _space(nlines=64):
    space = RegionSpace()
    space.region("C", nlines * 64)
    return space


def _chunk_op(space, write, chunk):
    s = AccessSummary()
    kw = dict(offset=chunk * 8 * 64, count=64, elem_size=8, stride=8)
    (s.write if write else s.read)(space.get("C"), **kw)
    return s


def _stats_tuple(model, core):
    s = model.stats[core]
    return (
        s.accesses, s.l1_hits, s.l2_hits, s.mem_misses,
        s.coherence_misses, s.upgrades, s.cycles,
    )


@settings(max_examples=25, deadline=None)
@given(
    ncores=st.integers(min_value=2, max_value=63),
    words=st.integers(min_value=2, max_value=4),
    pattern=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # active-core index
            st.booleans(),  # write?
            st.integers(min_value=0, max_value=7),  # chunk index
        ),
        min_size=1,
        max_size=30,
    ),
)
def test_two_level_bit_identical_to_flat_below_old_ceiling(ncores, words, pattern):
    """Any ≤63-core config: forcing the multi-word directory paths must
    reproduce the flat single-word mask's cycles bit for bit."""
    space = _space()
    flat = FastMemorySystem(ncores, L1, L2, MEM, space)
    wide = FastMemorySystem(ncores, L1, L2, MEM, space, directory_words=words)
    assert flat._nwords == 1 and wide._nwords == words
    cores = sorted({0, ncores // 2, ncores - 1})
    for ci, write, chunk in pattern:
        core = cores[ci % len(cores)]
        s = _chunk_op(space, write, chunk)
        assert flat.run_summary(core, s) == wide.run_summary(core, s)
    for c in cores:
        assert _stats_tuple(flat, c) == _stats_tuple(wide, c)
    assert flat.bus_transactions == wide.bus_transactions


def test_boundary_64_cores_single_word():
    """64 cores fit ONE word (the old flat code stopped at 63): the
    boundary config must run, and must match a forced two-word layout."""
    space = _space()
    one = FastMemorySystem(64, L1, L2, MEM, space)
    two = FastMemorySystem(64, L1, L2, MEM, space, directory_words=2)
    assert one._nwords == 1 and two._nwords == 2
    script = [
        (0, True, 0), (31, False, 0), (63, False, 0), (63, True, 0),
        (0, False, 0), (31, True, 1), (0, False, 1), (63, False, 1),
    ]
    for core, write, chunk in script:
        s = _chunk_op(space, write, chunk)
        assert one.run_summary(core, s) == two.run_summary(core, s)
    for c in (0, 31, 63):
        assert _stats_tuple(one, c) == _stats_tuple(two, c)
    # The boundary bit itself: core 63's writes invalidated core 0's copy.
    assert one.stats[63].accesses > 0


@pytest.mark.parametrize("ncores", [8, 63, 64, 128])
def test_two_level_bit_identical_at_and_past_the_wall(ncores):
    """Flat vs two-level bit-identity at the acceptance core counts:
    below the old ceiling (8, 63), at the one-word boundary (64) and in
    genuinely multi-word territory (128 = natural 2 words vs forced 4)."""
    space = _space()
    natural = FastMemorySystem(ncores, L1, L2, MEM, space)
    forced = FastMemorySystem(
        ncores, L1, L2, MEM, space, directory_words=natural._nwords + 2
    )
    cores = sorted({0, 1, ncores // 2, ncores - 1})
    script = [
        (c, write, chunk)
        for chunk in range(4)
        for write in (True, False)
        for c in cores
    ]
    for core, write, chunk in script:
        s = _chunk_op(space, write, chunk)
        assert natural.run_summary(core, s) == forced.run_summary(core, s)
    for c in cores:
        assert _stats_tuple(natural, c) == _stats_tuple(forced, c), f"core {c}"
    assert natural.bus_transactions == forced.bus_transactions


@pytest.mark.parametrize("ncores", [8, 63, 64, 128])
def test_exact_fast_crossvalidate_past_old_wall(ncores):
    """Exact vs fast protocol agreement at, below and beyond 63 cores.

    Coherence protocol events (cache-to-cache transfers, upgrades) must
    match exactly; the L2/DRAM hit split may diverge within the bounded
    tolerance the fast model's time-distance LRU is documented to have
    (see test_fastcache.test_cross_validation_chunked_traffic).
    """
    space = RegionSpace()
    region = space.region("S", 16 * 64)
    exact = CoherentMemorySystem(ncores, L1, L2, MEM, space)
    fast = FastMemorySystem(ncores, L1, L2, MEM, space)
    writer, readers = 0, sorted({1, ncores // 2, ncores - 1})
    w = AccessSummary().write(region)
    r = AccessSummary().read(region)
    for model in (exact, fast):
        model.run_summary(writer, w)
        for c in readers:
            model.run_summary(c, r)
        model.run_summary(readers[-1], w)
    for c in [writer] + readers:
        se, sf = exact.stats[c], fast.stats[c]
        assert se.accesses == sf.accesses
        assert se.coherence_misses == sf.coherence_misses
        assert se.upgrades == sf.upgrades
        assert se.l1_hits == sf.l1_hits
        assert se.l2_hits + se.mem_misses == sf.l2_hits + sf.mem_misses
        # At most one full sweep's worth of lines may land on the other
        # side of the L2/DRAM split (16 lines here).
        assert abs(se.mem_misses - sf.mem_misses) <= 16
    # First reader pays cache-to-cache for every Modified line.
    assert fast.stats[readers[0]].coherence_misses == 16


def test_full_scale_64x64_smoke():
    """The largest representable machine: 64 nodes x 64 cores."""
    space = RegionSpace()
    region = space.region("S", 16 * 64)
    fast = FastMemorySystem(MAX_CORES, L1, L2, MEM, space)
    assert fast._nwords == 64
    w = AccessSummary().write(region)
    r = AccessSummary().read(region)
    fast.run_summary(0, w)
    # Readers across distinct directory words: 0, 1, 63 (word 0), 64
    # (word 1), 4095 (word 63).
    for c in (1, 63, 64, 4095):
        fast.run_summary(c, r)
    # A write from the far end must see sharers in three other words and
    # invalidate them all.
    fast.run_summary(4095, w)
    assert fast.stats[1].coherence_misses == 16
    fast.run_summary(0, r)
    assert fast.stats[0].coherence_misses == 16  # 4095 owned them again
    for s in fast.stats[:2] + fast.stats[63:65] + fast.stats[4095:]:
        assert (
            s.l1_hits + s.l2_hits + s.mem_misses + s.coherence_misses == s.accesses
        )
