"""Deterministic fairness/backpressure tests for the serve scheduler.

Every property is pinned by replaying an exact submit/dispatch sequence —
the scheduler is a pure state machine (no wall clock), so there are no
sleeps anywhere in this file.
"""

import pytest

from repro.serve import FairScheduler


def drain(sched):
    order = []
    while True:
        entry = sched.next()
        if entry is None:
            return order
        order.append(entry)


# -- round-robin ---------------------------------------------------------------
def test_round_robin_interleaves_tenants():
    s = FairScheduler()
    for i in range(3):
        s.submit("alice", f"a{i}")
    for i in range(3):
        s.submit("bob", f"b{i}")
    assert [t for t, _ in drain(s)] == ["alice", "bob"] * 3


def test_fifo_within_tenant():
    s = FairScheduler()
    for i in range(4):
        s.submit("alice", i)
    assert [item for _, item in drain(s)] == [0, 1, 2, 3]


def test_late_tenant_joins_rotation():
    s = FairScheduler()
    s.submit("alice", "a0")
    s.submit("alice", "a1")
    assert s.next() == ("alice", "a0")
    s.submit("bob", "b0")  # arrives mid-drain, still gets its turn next
    assert s.next() == ("bob", "b0")
    assert s.next() == ("alice", "a1")


def test_idle_returns_none():
    s = FairScheduler()
    assert s.next() is None
    s.submit("alice", 1)
    s.next()
    assert s.next() is None


# -- priority ------------------------------------------------------------------
def test_higher_priority_dispatches_first():
    s = FairScheduler()
    s.submit("bulk", "low", priority=0)
    s.submit("urgent", "high", priority=5)
    assert s.next()[0] == "urgent"
    assert s.next()[0] == "bulk"


def test_priority_is_per_job_not_per_tenant():
    s = FairScheduler()
    s.submit("alice", "interactive", priority=3)
    s.submit("alice", "batch", priority=0)
    s.submit("bob", "batch", priority=0)
    assert s.next() == ("alice", "interactive")
    # alice's head is now priority 0 — plain round-robin resumes with bob.
    assert s.next()[0] == "bob"


def test_aging_prevents_starvation():
    """A priority-0 tenant under an endless priority-5 stream dispatches
    after exactly aging_rounds skips — delayed, never starved."""
    s = FairScheduler(aging_rounds=3)
    s.submit("low", "the-job", priority=0)
    for i in range(20):
        s.submit("high", f"h{i}", priority=5)
    order = []
    for _ in range(17):
        order.append(s.next()[0])
    # Low's effective priority is 0 + skips // 3; at 15 skips it ties
    # high's 5 and the tie breaks to low (the scan starts after the
    # last-dispatched tenant), so dispatch 16 is low's.
    assert order == ["high"] * 15 + ["low", "high"]


def test_aging_resets_after_dispatch():
    s = FairScheduler(aging_rounds=2)
    s.submit("low", "j1", priority=0)
    s.submit("low", "j2", priority=0)
    for i in range(12):
        s.submit("high", f"h{i}", priority=1)
    seq = [s.next()[0] for _ in range(8)]
    # low wins after 2 skips (0 + 2//2 = 1 ties, tie goes to scan order
    # after "high"), then must age again from zero for j2.
    assert seq.count("low") == 2
    first, second = (i for i, t in enumerate(seq) if t == "low")
    assert second - first >= 2  # aged from scratch between wins


# -- bounds / backpressure -----------------------------------------------------
def test_per_tenant_bound():
    s = FairScheduler(max_queued_per_tenant=2, max_queued_total=100)
    assert s.can_accept("alice", 2)
    assert not s.can_accept("alice", 3)
    assert s.submit("alice", 1) and s.submit("alice", 2)
    assert not s.submit("alice", 3)
    assert s.can_accept("bob", 2)  # independent per-tenant budget
    s.next()
    assert s.can_accept("alice", 1)  # dispatch frees depth


def test_global_bound():
    s = FairScheduler(max_queued_per_tenant=100, max_queued_total=3)
    s.submit("alice", 1)
    s.submit("bob", 2)
    s.submit("carol", 3)
    assert not s.can_accept("dave", 1)
    assert not s.submit("dave", 4)
    s.next()
    assert s.submit("dave", 4)


def test_bounds_validated():
    with pytest.raises(ValueError):
        FairScheduler(max_queued_per_tenant=0)
    with pytest.raises(ValueError):
        FairScheduler(aging_rounds=0)


# -- determinism ---------------------------------------------------------------
def test_replay_is_deterministic():
    """Identical submit sequences produce identical dispatch sequences."""

    def run():
        s = FairScheduler(aging_rounds=2)
        for i in range(5):
            s.submit("a", ("a", i), priority=i % 3)
            s.submit("b", ("b", i), priority=(i + 1) % 2)
            if i % 2:
                s.submit("c", ("c", i), priority=4)
        return drain(s)

    assert run() == run()


def test_introspection():
    s = FairScheduler()
    s.submit("alice", 1)
    s.submit("alice", 2)
    s.submit("bob", 3)
    assert s.pending_total == 3
    assert s.pending("alice") == 2 and s.pending("nobody") == 0
    assert s.tenants() == ["alice", "bob"]
