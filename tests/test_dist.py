"""Unit and behaviour tests for the repro.net subsystem and TFluxDist.

Three layers:

* the network model itself — serialisation arithmetic, NIC/link
  occupancy, the analytic RX ingest clock, message validation;
* the :class:`~repro.net.ownermap.RegionOwnerMap` forwarding rules
  (write-owns, first remote read pulls, cached copies stay free,
  remote writes invalidate);
* the platform — multi-node runs compute correct results, publish the
  ``net.*`` counters, close the termination barrier, and make the
  ISSUE's placement trade-off visible: contiguous placement minimises
  the remote-update fraction on neighbour-structured graphs while
  round-robin wins on skewed per-context cost (load balance).
"""

import pickle

import pytest

from repro.core import ProgramBuilder
from repro.net import Message, MsgKind, NetParams, Network, RegionOwnerMap
from repro.net.message import UPDATE_BYTES
from repro.platforms.dist import TFluxDist
from repro.sim.accesses import AccessSummary, RegionSpace
from repro.sim.capability import DirectoryCapacityError
from repro.sim.engine import Engine
from repro.tsu.policy import contiguous_placement, round_robin_placement

NET = NetParams()  # defaults: latency 400, 16 B/cycle, NIC 120, header 64


# -- message / params ---------------------------------------------------------
def test_message_validation():
    with pytest.raises(ValueError):
        Message(MsgKind.ACK, src=1, dst=1)
    with pytest.raises(ValueError):
        Message(MsgKind.ACK, src=0, dst=1, payload_bytes=-1)


def test_serialize_cycles_is_ceil_at_line_rate():
    assert NET.serialize_cycles(0) == 0
    assert NET.serialize_cycles(1) == 1
    assert NET.serialize_cycles(16) == 1
    assert NET.serialize_cycles(17) == 2
    assert NetParams(bytes_per_cycle=0.5).serialize_cycles(3) == 6
    assert NetParams.zero_cost().serialize_cycles(10**9) == 0


def test_transmit_pays_nic_serialisation_and_latency():
    eng = Engine()
    net = Network(eng, 2, NET)
    delivered = []
    net.transmit(Message(MsgKind.READY_UPDATE, 0, 1, payload_bytes=16), delivered.append)
    eng.run()
    # 80 B at 16 B/cycle = 5; NIC holds 120+5, link 5, then 400 latency.
    assert eng.now == 120 + 5 + 5 + 400
    assert delivered[0].dst == 1
    assert net.messages == 1
    assert net.control_bytes == 80
    assert net.nic_busy_cycles == 125 and net.link_busy_cycles == 5


def test_sender_nic_serialises_messages():
    """Two messages from one node queue at its NIC TX port."""
    eng = Engine()
    net = Network(eng, 3, NET)
    times = {}
    for dst in (1, 2):
        net.transmit(
            Message(MsgKind.READY_UPDATE, 0, dst, payload_bytes=16),
            lambda m, dst=dst: times.__setitem__(dst, eng.now),
        )
    eng.run()
    # Distinct links, shared NIC: second delivery is one NIC hold later.
    assert times[1] == 530
    assert times[2] == 530 + 125


def test_pull_clocks_the_rx_ingest():
    eng = Engine()
    net = Network(eng, 3, NET)
    assert net.pull(0, {}) == 0
    first = net.pull(0, {1: 1024})
    assert first == NET.serialize_cycles(1024) + NET.link_latency_cycles
    # Back-to-back at the same instant: the second pull queues behind the
    # first at node 0's NIC RX.
    second = net.pull(0, {2: 1024})
    assert second == first + NET.serialize_cycles(1024)
    assert net.bytes_forwarded == 2048
    assert net.data_pulls == 2
    with pytest.raises(ValueError):
        net.pull(0, {0: 64})


def test_zero_cost_network_is_free():
    eng = Engine()
    net = Network(eng, 2, NetParams.zero_cost())
    got = []
    net.transmit(Message(MsgKind.TERMINATE, 0, 1), got.append)
    eng.run()
    assert eng.now == 0 and got
    assert net.pull(1, {0: 1 << 20}) == 0


# -- owner map ----------------------------------------------------------------
def _space():
    rs = RegionSpace()
    return rs, rs.region("A", 1024)


def test_ownermap_write_then_remote_read_forwards_once():
    rs, A = _space()
    om = RegionOwnerMap(rs, 64, 2)
    om.access(0, AccessSummary().write(A, 0, 64))  # lines 0..7
    assert om.access(1, AccessSummary().read(A)) == {0: 8 * 64}
    assert om.access(1, AccessSummary().read(A)) == {}  # copy cached
    assert om.access(0, AccessSummary().read(A)) == {}  # owner reads free


def test_ownermap_unwritten_lines_are_replicated_inputs():
    rs, A = _space()
    om = RegionOwnerMap(rs, 64, 4)
    assert om.access(3, AccessSummary().read(A)) == {}


def test_ownermap_remote_write_invalidates_copies():
    rs, A = _space()
    om = RegionOwnerMap(rs, 64, 3)
    om.access(0, AccessSummary().write(A))
    om.access(1, AccessSummary().read(A))
    om.access(2, AccessSummary().write(A, 0, 16))  # lines 0..1
    assert om.access(1, AccessSummary().read(A)) == {2: 2 * 64}


def test_ownermap_write_read_in_one_summary_is_local():
    rs, A = _space()
    om = RegionOwnerMap(rs, 64, 2)
    om.access(0, AccessSummary().write(A))
    summary = AccessSummary().write(A).read(A)  # rewrite then re-read
    assert om.access(1, summary) == {}


def test_ownermap_caps_nodes_at_directory_width():
    rs, _ = _space()
    assert RegionOwnerMap(rs, 64, 64).nnodes == 64  # one presence word exactly
    with pytest.raises(DirectoryCapacityError):
        RegionOwnerMap(rs, 64, 65)


# -- platform validation ------------------------------------------------------
def test_dist_validates_composition():
    with pytest.raises(ValueError):
        TFluxDist(nnodes=0)
    # 8 nodes x 8 cores = 64 cores: over the old flat 63-core bitmask,
    # comfortably inside the two-level directory.
    assert TFluxDist(nnodes=8).machine.ncores == 64
    with pytest.raises(DirectoryCapacityError):
        TFluxDist(nnodes=65)  # over the presence word's 64 nodes
    assert TFluxDist(nnodes=4).max_kernels == 24
    assert TFluxDist(nnodes=2).machine.ncores == 16


def _simple_program(n=24):
    b = ProgramBuilder("simple")
    b.env.alloc("out", n)
    t = b.thread(
        "w", body=lambda env, i: env.array("out").__setitem__(i, i + 1), contexts=n
    )
    red = b.thread(
        "r", body=lambda env, _: env.set("total", float(env.array("out").sum()))
    )
    b.depends(t, red, "all")
    return b.build()


def test_dist_rejects_bad_execute_args():
    with pytest.raises(ValueError):
        TFluxDist(nnodes=2).execute(_simple_program(), nkernels=2, allow_stealing=True)
    with pytest.raises(ValueError):
        TFluxDist(nnodes=4).execute(_simple_program(), nkernels=2)  # < 1/node
    with pytest.raises(ValueError):
        TFluxDist(nnodes=2).execute(_simple_program(), nkernels=13)  # > max


def test_dist_platform_is_picklable():
    """TFluxDist rides EvalRequest through the repro.exec pool/cache."""
    p = pickle.loads(pickle.dumps(TFluxDist(nnodes=2)))
    assert p.nnodes == 2 and p.max_kernels == 12


def test_dist_runs_and_publishes_net_counters():
    result = TFluxDist(nnodes=2).execute(_simple_program(), nkernels=12)
    assert result.env.get("total") == float(sum(range(1, 25)))
    assert result.nnodes == 2
    c = result.counters
    assert c["net.remote_updates"] > 0
    assert c["net.messages"] > 0
    assert c["net.msg.ready_update"] > 0
    # Termination barrier: exactly one TERMINATE/ACK pair per remote node.
    assert c["net.msg.terminate"] == 1
    assert c["net.msg.ack"] == 1
    assert c["net.msg.inlet_bcast"] >= 1
    assert (
        c["net.remote_updates"] + c["net.local_updates"] == c["tsu.post_updates"]
    )
    assert result.to_record().nnodes == 2


def test_dist_network_cost_slows_the_run():
    fast = TFluxDist(nnodes=2, net=NetParams.zero_cost()).execute(
        _simple_program(), nkernels=12
    )
    slow = TFluxDist(
        nnodes=2, net=NetParams(link_latency_cycles=20000)
    ).execute(_simple_program(), nkernels=12)
    assert slow.env.get("total") == fast.env.get("total")
    assert slow.cycles > fast.cycles


# -- the placement trade-off (ISSUE acceptance) -------------------------------
def _neighbour_program(w=48):
    """A fan-in tree: consumer i sums producers 2i and 2i+1.  Neighbour
    producers feed one consumer, so contiguity keeps whole subtrees
    on-node while round-robin splits almost every pair across the wire."""
    b = ProgramBuilder("neigh")
    b.env.alloc("a", w)
    b.env.alloc("b", w // 2)
    t1 = b.thread(
        "s1", body=lambda env, i: env.array("a").__setitem__(i, i + 1), contexts=w
    )
    t2 = b.thread(
        "s2",
        body=lambda env, i: env.array("b").__setitem__(
            i, env.array("a")[2 * i] + env.array("a")[2 * i + 1]
        ),
        contexts=w // 2,
    )
    b.depends(t1, t2, lambda i: (i // 2,))
    return b.build()


def _skewed_program(w=48):
    """Single template whose compute cost grows with the context: a
    contiguous split gives the last node far more work."""
    b = ProgramBuilder("skew")
    b.env.alloc("out", w)
    b.thread(
        "w",
        body=lambda env, i: env.array("out").__setitem__(i, i),
        contexts=w,
        cost=lambda env, i: 100 + 400 * i,
    )
    return b.build()


def _remote_fraction(result):
    c = result.counters
    total = c["net.remote_updates"] + c["net.local_updates"]
    return c["net.remote_updates"] / total if total else 0.0


def test_contiguous_minimises_remote_update_fraction():
    contig = TFluxDist(nnodes=2).execute(
        _neighbour_program(), nkernels=12, placement=contiguous_placement
    )
    rr = TFluxDist(nnodes=2).execute(
        _neighbour_program(), nkernels=12, placement=round_robin_placement
    )
    assert contig.env.get("b") is not None
    # Neighbour deps: contiguity keeps almost all updates on-node;
    # round-robin scatters a large fraction across the wire.
    assert _remote_fraction(contig) < 0.15
    assert _remote_fraction(rr) > 0.25
    assert _remote_fraction(rr) > 3 * _remote_fraction(contig)


def test_round_robin_balances_skewed_load():
    def spread(result):
        busy = [k.core.compute_cycles for k in result.kernels]
        return max(busy) / (sum(busy) / len(busy))

    contig = TFluxDist(nnodes=2).execute(
        _skewed_program(), nkernels=12, placement=contiguous_placement
    )
    rr = TFluxDist(nnodes=2).execute(
        _skewed_program(), nkernels=12, placement=round_robin_placement
    )
    # Round-robin deals the expensive tail contexts across all kernels.
    assert spread(rr) < spread(contig)
    # ... and that balance buys real time on the skewed program.
    assert rr.region_cycles < contig.region_cycles
