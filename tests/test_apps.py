"""Correctness tests for the workload applications.

Every app is validated three ways: sequential reference execution,
simulated platform execution (zero-overhead adapter), and the native
threaded runtime — all must produce oracle-exact results.
"""

import numpy as np
import pytest

from repro.apps import BENCHMARKS, get_benchmark, problem_sizes
from repro.apps.common import chunk_bounds, nthreads_for
from repro.apps.qsort import _merge_runs
from repro.apps.susan import smooth_oracle, synthetic_image
from repro.apps.trapez import reference as trapez_reference
from repro.runtime.native import NativeRuntime
from repro.runtime.simdriver import SimulatedRuntime, run_sequential_timed
from repro.sim.machine import BAGLE_27

ALL_BENCH = sorted(BENCHMARKS)


# -- helpers ------------------------------------------------------------------
def test_registry_has_all_benchmarks():
    # The paper's five workloads plus the beyond-paper dynamic-graph apps
    # (recursive quicksort and adaptive quadrature).
    assert ALL_BENCH == [
        "fft", "mmult", "qsort", "qsort_rec", "quad", "susan", "trapez"
    ]


def test_problem_size_grid_matches_table1():
    assert problem_sizes("trapez", "S")["large"].params == {"k": 23}
    assert problem_sizes("mmult", "S")["large"].params == {"n": 256}
    assert problem_sizes("mmult", "N")["large"].params == {"n": 1024}
    assert problem_sizes("qsort", "C")["large"].params == {"n": 12_000}
    assert problem_sizes("susan", "S")["medium"].params == {"w": 512, "h": 576}
    assert problem_sizes("fft", "S")["small"].params == {"n": 32}


def test_chunk_bounds_partition():
    pieces = [chunk_bounds(100, 7, i) for i in range(7)]
    assert pieces[0][0] == 0 and pieces[-1][1] == 100
    for (a, b), (c, d) in zip(pieces, pieces[1:]):
        assert b == c
    sizes = [b - a for a, b in pieces]
    assert max(sizes) - min(sizes) <= 1


def test_nthreads_for():
    assert nthreads_for(100, 1) == 100
    assert nthreads_for(100, 64) == 2
    assert nthreads_for(10, 100) == 1
    with pytest.raises(ValueError):
        nthreads_for(10, 0)


# -- small-size sequential correctness for every app -----------------------------
@pytest.mark.parametrize("name", ALL_BENCH)
def test_sequential_correctness(name):
    bench = get_benchmark(name)
    size = problem_sizes(name, "S")["small"]
    prog = bench.build(size, unroll=4)
    env = prog.run_sequential()
    bench.verify(env, size)


@pytest.mark.parametrize("name", ALL_BENCH)
def test_simulated_platform_correctness(name):
    bench = get_benchmark(name)
    size = problem_sizes(name, "S")["small"]
    prog = bench.build(size, unroll=8)
    res = SimulatedRuntime(prog, BAGLE_27, nkernels=4).run()
    bench.verify(res.env, size)
    assert res.cycles > 0


@pytest.mark.parametrize("name", ALL_BENCH)
def test_native_platform_correctness(name):
    bench = get_benchmark(name)
    size = problem_sizes(name, "S")["small"]
    prog = bench.build(size, unroll=16)
    res = NativeRuntime(prog, nkernels=3).run()
    bench.verify(res.env, size)


@pytest.mark.parametrize("name", ALL_BENCH)
@pytest.mark.parametrize("unroll", [1, 2, 64])
def test_unroll_preserves_results(name, unroll):
    bench = get_benchmark(name)
    size = problem_sizes(name, "S")["small"]
    prog = bench.build(size, unroll=unroll, max_threads=512)
    env = prog.run_sequential()
    bench.verify(env, size)


# -- app-specific details ----------------------------------------------------------
def test_trapez_reference_converges_to_pi():
    assert abs(trapez_reference(16) - np.pi) < 1e-8


def test_trapez_partials_sum_to_integral():
    bench = get_benchmark("trapez")
    size = problem_sizes("trapez", "S")["small"]
    prog = bench.build(size, unroll=32)
    env = prog.run_sequential()
    assert abs(env.get("integral") - env.array("parts").sum()) < 1e-12


def test_mmult_thread_count_respects_unroll():
    bench = get_benchmark("mmult")
    size = problem_sizes("mmult", "S")["small"]  # n=64
    prog1 = bench.build(size, unroll=1)
    prog8 = bench.build(size, unroll=8)
    assert prog1.ninstances == 64
    assert prog8.ninstances == 8


def test_qsort_merge_runs_correct():
    rng = np.random.default_rng(7)
    runs = [np.sort(rng.integers(0, 1000, size=s)).astype(float) for s in (5, 17, 1, 8)]
    merged = _merge_runs(runs)
    expected = np.sort(np.concatenate(runs))
    np.testing.assert_array_equal(merged, expected)


def test_qsort_merge_single_run():
    a = np.array([1.0, 2.0, 3.0])
    np.testing.assert_array_equal(_merge_runs([a]), a)


def test_qsort_parts_multiple_of_groups():
    bench = get_benchmark("qsort")
    size = problem_sizes("qsort", "S")["small"]
    for unroll in (1, 3, 7, 64):
        prog = bench.build(size, unroll=unroll)
        sort_tmpl = prog.graph.template(1)
        assert sort_tmpl.ninstances % 4 == 0


def test_susan_oracle_matches_rowwise():
    img = synthetic_image(64, 48)
    from repro.apps.susan import _smooth_rows

    whole = smooth_oracle(img)
    stitched = np.vstack([_smooth_rows(img, lo, min(lo + 7, 48)) for lo in range(0, 48, 7)])
    np.testing.assert_allclose(stitched, whole, rtol=1e-12)


def test_susan_smoothing_preserves_flat_regions():
    img = np.full((16, 16), 100.0)
    np.testing.assert_allclose(smooth_oracle(img), img)


def test_susan_smoothing_reduces_noise_variance():
    rng = np.random.default_rng(3)
    img = 128 + rng.standard_normal((64, 64)) * 5
    sm = smooth_oracle(img)
    assert sm.var() < img.var()


def test_fft_matches_numpy_fft2():
    bench = get_benchmark("fft")
    size = problem_sizes("fft", "S")["small"]
    prog = bench.build(size, unroll=2)
    env = prog.run_sequential()
    bench.verify(env, size)


def test_fft_checksum_is_spectral_sum():
    bench = get_benchmark("fft")
    size = problem_sizes("fft", "S")["small"]
    env = bench.build(size, unroll=4).run_sequential()
    np.testing.assert_allclose(env.get("checksum"), env.array("X").sum(), rtol=1e-12)


# -- cost model sanity --------------------------------------------------------------
# quad is excluded: its problem size is a precision (eps) and all of its
# work past the root stage is spawned at run time, so the *statically*
# declared cost is size-independent by construction.  Its scaling lives
# in test_quad_dynamic_work_scales_with_precision below.
@pytest.mark.parametrize("name", [n for n in ALL_BENCH if n != "quad"])
def test_costs_scale_with_problem_size(name):
    """Total declared compute must grow with the problem size."""
    bench = get_benchmark(name)
    sizes = problem_sizes(name, "S")

    def total_cost(size):
        prog = bench.build(size, unroll=8)
        env = prog.env
        g = prog.expanded()
        total = sum(
            inst.template.compute_cost(env, inst.ctx) for inst in g.instances
        )
        total += sum(s.compute_cost(env) for s in prog.prologue)
        return total

    assert total_cost(sizes["small"]) < total_cost(sizes["medium"]) < total_cost(sizes["large"])


def test_quad_dynamic_work_scales_with_precision():
    """quad's work materializes at run time: a tighter tolerance must
    execute more DThreads, even though the static root graph is fixed."""
    bench = get_benchmark("quad")
    sizes = problem_sizes("quad", "S")

    def executed(size):
        prog = bench.build(size, unroll=8)
        res = run_sequential_timed(prog, BAGLE_27)
        bench.verify(res.env, size)
        return res.total_dthreads

    assert (
        executed(sizes["small"])
        < executed(sizes["medium"])
        < executed(sizes["large"])
    )


@pytest.mark.parametrize("name", ALL_BENCH)
def test_declared_accesses_stay_in_regions(name):
    """Every access summary must already satisfy region bounds (the
    AccessSummary constructor validates; building all of them is the test)."""
    bench = get_benchmark(name)
    size = problem_sizes(name, "S")["small"]
    prog = bench.build(size, unroll=4)
    env = prog.env
    for inst in prog.expanded().instances:
        summary = inst.template.access_summary(env, inst.ctx)
        for op in summary:
            assert op.region.name in env.regions._regions
