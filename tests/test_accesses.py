"""Unit and property tests for the declarative access-summary language."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.accesses import AccessSummary, Read, Region, RegionSpace, Write


@pytest.fixture
def space():
    return RegionSpace()


def test_region_registration(space):
    a = space.region("A", 1024)
    assert a.name == "A" and a.size == 1024 and a.index == 0
    b = space.region("B", 2048)
    assert b.index == 1
    assert len(space) == 2
    assert space.total_bytes == 3072


def test_region_redeclare_same_size_ok(space):
    a1 = space.region("A", 1024)
    a2 = space.region("A", 1024)
    assert a1 is a2


def test_region_redeclare_different_size_rejected(space):
    space.region("A", 1024)
    with pytest.raises(ValueError):
        space.region("A", 2048)


def test_region_zero_size_rejected(space):
    with pytest.raises(ValueError):
        space.region("Z", 0)


def test_region_line_count(space):
    a = space.region("A", 1000)
    assert a.lines(64) == 16  # ceil(1000/64)


def test_read_overrun_rejected(space):
    a = space.region("A", 64)
    with pytest.raises(ValueError):
        Read(a, offset=0, count=9, elem_size=8, stride=8)


def test_dense_line_indices(space):
    a = space.region("A", 1024)
    op = Read(a, offset=0, count=128, elem_size=8, stride=8)
    assert list(op.line_indices(64)) == list(range(16))


def test_offset_line_indices(space):
    a = space.region("A", 1024)
    op = Read(a, offset=256, count=16, elem_size=8, stride=8)
    assert list(op.line_indices(64)) == [4, 5]


def test_strided_line_indices(space):
    # Column access: 8-byte elements every 256 bytes -> one line each.
    a = space.region("A", 64 * 256)
    op = Read(a, offset=0, count=64, elem_size=8, stride=256)
    idx = op.line_indices(64)
    assert list(idx) == [i * 4 for i in range(64)]


def test_element_spanning_two_lines(space):
    a = space.region("A", 256)
    op = Read(a, offset=60, count=1, elem_size=8, stride=8)
    assert list(op.line_indices(64)) == [0, 1]


def test_empty_op(space):
    a = space.region("A", 64)
    op = Read(a, offset=0, count=0)
    assert len(list(op.line_indices(64))) == 0
    assert op.bytes_touched == 0


def test_summary_builder(space):
    a = space.region("A", 1024)
    b = space.region("B", 512)
    s = AccessSummary().read(a).write(b, reps=2)
    assert len(s) == 2
    assert s.bytes_read == 1024
    assert s.bytes_written == 1024  # 512 * 2 reps
    assert s.regions() == {"A", "B"}


def test_summary_default_count_respects_offset(space):
    a = space.region("A", 1024)
    s = AccessSummary().read(a, offset=512)
    assert s.ops[0].count == 64  # (1024-512)/8


def test_summary_merge(space):
    a = space.region("A", 64)
    s1 = AccessSummary().read(a)
    s2 = AccessSummary().write(a)
    merged = AccessSummary.merge([s1, s2])
    assert len(merged) == 2
    assert merged.ops[0].is_write is False
    assert merged.ops[1].is_write is True


@given(
    size=st.integers(min_value=64, max_value=1 << 16),
    offset_frac=st.floats(min_value=0, max_value=0.5),
    line=st.sampled_from([32, 64, 128]),
)
def test_line_indices_within_region(size, offset_frac, line):
    """Every produced line index addresses a line inside the region."""
    space = RegionSpace()
    region = space.region("R", size)
    offset = int(offset_frac * size) // 8 * 8
    count = (size - offset) // 8
    op = Read(region, offset=offset, count=count, elem_size=8, stride=8)
    idx = list(op.line_indices(line))
    nlines = region.lines(line)
    assert all(0 <= i < nlines for i in idx)
    # Dense sweeps touch contiguous lines.
    if idx:
        assert idx == list(range(idx[0], idx[-1] + 1))


@given(
    count=st.integers(min_value=1, max_value=200),
    stride=st.sampled_from([8, 16, 64, 128, 512]),
    line=st.sampled_from([64, 128]),
)
def test_strided_line_count_bounds(count, stride, line):
    """A sweep touches at least the footprint's lines and at most count*2."""
    space = RegionSpace()
    region = space.region("R", stride * count + 16)
    op = Read(region, offset=0, count=count, elem_size=8, stride=stride)
    idx = list(op.line_indices(line))
    span_lines = (stride * (count - 1) + 8 - 1) // line + 1
    assert 1 <= len(idx) <= 2 * count
    assert len(idx) <= span_lines + 1
    assert sorted(set(idx)) == sorted(idx) or isinstance(idx, range)


def test_wide_element_strided_includes_interior_lines(space):
    """Regression: an element spanning >2 cache lines must count every
    line it touches (FFT's column slabs are 256B = 4 x 64B lines)."""
    a = space.region("W", 8 * 2048)
    op = Read(a, offset=0, count=8, elem_size=256, stride=2048)
    idx = list(op.line_indices(64))
    expected = sorted(
        line for e in range(8) for line in range(e * 32, e * 32 + 4)
    )
    assert idx == expected


def test_default_count_with_stride(space):
    """Regression: .read(region, stride=...) without count must not
    overrun the region (count derives from the stride)."""
    a = space.region("S2", 1024)
    s = AccessSummary().read(a, stride=128)
    assert s.ops[0].count == 8  # elements at 0,128,...,896 (+8B each)
    s2 = AccessSummary().read(a, offset=512, stride=128)
    assert s2.ops[0].count == 4
