"""Tests for DDM blocks, environments, programs, and the builder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    DDMProgram,
    Environment,
    ProgramBuilder,
    ThreadKind,
)
from repro.core.block import split_into_blocks
from repro.core.dthread import DThreadTemplate
from repro.core.graph import SynchronizationGraph


# -- Environment ------------------------------------------------------------
def test_env_alloc_and_region():
    env = Environment()
    a = env.alloc("A", (4, 4))
    assert a.shape == (4, 4)
    assert env.region("A").size == 128
    assert "A" in env


def test_env_duplicate_name_rejected():
    env = Environment()
    env.alloc("A", 4)
    with pytest.raises(KeyError):
        env.alloc("A", 4)


def test_env_scalars_share_region():
    env = Environment()
    env.set("x", 1.5)
    env.set("y", 2)
    assert env.region("x") is env.region("y")
    assert env["x"] == 1.5


def test_env_adopt_existing_array():
    env = Environment()
    arr = np.arange(10)
    adopted = env.adopt("data", arr)
    assert adopted is not arr or adopted.base is None  # asarray may share
    assert env.array("data").sum() == 45


def test_env_setitem_array_copyback():
    env = Environment()
    env.alloc("A", 4)
    env["A"] = np.ones(4)
    assert env.array("A").sum() == 4


def test_env_setitem_shape_mismatch_rejected():
    env = Environment()
    env.alloc("A", 4)
    with pytest.raises(ValueError):
        env["A"] = np.ones(5)


def test_env_scalar_name_collision_rejected():
    env = Environment()
    env.alloc("A", 4)
    with pytest.raises(KeyError):
        env.set("A", 1)


# -- block splitting --------------------------------------------------------
def chain_graph(n):
    g = SynchronizationGraph()
    for i in range(n):
        g.add_template(DThreadTemplate(tid=i + 1, name=f"t{i}"))
        if i:
            g.add_arc(i, i + 1)
    return g.expand()


def test_single_block_when_capacity_none():
    blocks = split_into_blocks(chain_graph(10))
    assert len(blocks) == 1
    assert blocks[0].size == 10
    assert blocks[0].is_last


def test_split_respects_capacity():
    blocks = split_into_blocks(chain_graph(10), tsu_capacity=4)
    assert [b.size for b in blocks] == [4, 4, 2]
    assert [b.is_last for b in blocks] == [False, False, True]


def test_split_blocks_have_inlet_outlet():
    blocks = split_into_blocks(chain_graph(5), tsu_capacity=2)
    for b in blocks:
        assert b.inlet.kind == ThreadKind.INLET
        assert b.outlet.kind == ThreadKind.OUTLET
        assert b.inlet.iid == b.size
        assert b.outlet.iid == b.size + 1
        b.check_invariants()


def test_split_no_backward_arcs():
    """Topological cutting: every arc is intra-block or crosses forward."""
    g = SynchronizationGraph()
    g.add_template(DThreadTemplate(tid=1, name="w", contexts=range(6)))
    g.add_template(DThreadTemplate(tid=2, name="r"))
    g.add_arc(1, 2, "all")
    eg = g.expand()
    blocks = split_into_blocks(eg, tsu_capacity=3)
    # The reducer must land in the last block.
    last_names = [inst.name for inst in blocks[-1].instances]
    assert "r[0]" in last_names


def test_split_chain_blocks_entry():
    blocks = split_into_blocks(chain_graph(6), tsu_capacity=3)
    for b in blocks:
        # Chain cut: the first element of each block is its only entry.
        assert b.entry == [0]


def test_bad_capacity_rejected():
    with pytest.raises(ValueError):
        split_into_blocks(chain_graph(3), tsu_capacity=0)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=40),
    cap=st.integers(min_value=1, max_value=12),
)
def test_split_partition_property(n, cap):
    """Blocks partition the instance set and each respects capacity."""
    blocks = split_into_blocks(chain_graph(n), tsu_capacity=cap)
    seen = [inst.iid for b in blocks for inst in b.instances]
    assert sorted(seen) == list(range(n))
    assert all(b.size <= cap for b in blocks)
    assert sum(1 for b in blocks if b.is_last) == 1
    for b in blocks:
        b.check_invariants()


# -- programs & builder -------------------------------------------------------
def build_sum_program(n=8):
    b = ProgramBuilder("sum")
    b.env.alloc("parts", n)

    def work(env, i):
        env.array("parts")[i] = i * i

    def total(env, _):
        env.set("total", float(env.array("parts").sum()))

    t1 = b.thread("work", body=work, contexts=n)
    t2 = b.thread("total", body=total)
    b.depends(t1, t2, "all")
    return b.build()


def test_program_sequential_execution():
    prog = build_sum_program(8)
    env = prog.run_sequential()
    assert env.get("total") == sum(i * i for i in range(8))


def test_program_ninstances():
    assert build_sum_program(8).ninstances == 9


def test_program_prologue_epilogue_order():
    b = ProgramBuilder("order")
    trace = []
    b.prologue("init", body=lambda env: trace.append("pro"))
    b.thread("mid", body=lambda env, _: trace.append("mid"))
    b.epilogue("fini", body=lambda env: trace.append("epi"))
    b.build().run_sequential()
    assert trace == ["pro", "mid", "epi"]


def test_program_deadlock_detection():
    """An instance whose producers never fire is reported, not hung.

    A well-formed expansion cannot deadlock (ready counts equal incoming
    arcs), so we corrupt a ready count to exercise the defensive check.
    """
    g = SynchronizationGraph()
    g.add_template(DThreadTemplate(tid=1, name="a"))
    g.add_template(DThreadTemplate(tid=2, name="b"))
    g.add_arc(1, 2)
    prog = DDMProgram("dead", g, Environment())
    eg = prog.expanded()
    eg.ready_counts[eg.iid_of(2, 0)] += 1  # one phantom producer
    with pytest.raises(RuntimeError, match="deadlock"):
        prog.run_sequential()


def test_builder_tid_autoassign_and_explicit():
    b = ProgramBuilder("tids")
    t1 = b.thread("a")
    t9 = b.thread("b", tid=9)
    t10 = b.thread("c")
    assert (t1.tid, t9.tid, t10.tid) == (1, 9, 10)


def test_builder_dependency_by_template_or_tid():
    b = ProgramBuilder("deps")
    ta = b.thread("a")
    tb = b.thread("b")
    b.depends(ta, tb.tid)
    eg = b.build().expanded()
    assert eg.ready_counts[eg.iid_of(tb.tid, 0)] == 1


def test_program_blocks_delegates():
    prog = build_sum_program(8)
    blocks = prog.blocks(tsu_capacity=4)
    assert sum(b.size for b in blocks) == 9
