"""App-level cross-validation of the exact and fast memory models.

The unit-level cross-validation lives in test_fastcache.py; here whole
benchmark programs run under both models and their *cycle totals* and
miss profiles must agree closely — the evidence that using the fast
model for the figure sweeps does not change any reported shape.
"""

import pytest

from repro.apps import get_benchmark
from repro.apps.common import ProblemSize
from repro.platforms import TFluxHard
from repro.runtime.simdriver import SimulatedRuntime
from repro.sim.machine import BAGLE_27
from repro.tsu.hardware import HardwareTSUAdapter

# Tiny inputs so the exact (line-by-line Python) model stays fast.
TINY = {
    "trapez": ProblemSize("trapez", "S", "tiny", {"k": 14}),
    "mmult": ProblemSize("mmult", "S", "tiny", {"n": 32}),
    "qsort": ProblemSize("qsort", "S", "tiny", {"n": 2000}),
    "susan": ProblemSize("susan", "S", "tiny", {"w": 64, "h": 48}),
    "fft": ProblemSize("fft", "S", "tiny", {"n": 16}),
}


def run_both(name: str, nkernels: int = 4, unroll: int = 4):
    bench = get_benchmark(name)
    out = {}
    for exact in (False, True):
        prog = bench.build(TINY[name], unroll=unroll, max_threads=128)
        res = SimulatedRuntime(
            prog,
            BAGLE_27,
            nkernels=nkernels,
            adapter_factory=lambda e, t: HardwareTSUAdapter(e, t),
            exact_memory=exact,
        ).run()
        bench.verify(res.env, TINY[name])
        out["exact" if exact else "fast"] = res
    return out


@pytest.mark.parametrize("name", sorted(TINY))
def test_cycle_totals_agree(name):
    res = run_both(name)
    fast, exact = res["fast"].region_cycles, res["exact"].region_cycles
    assert fast == pytest.approx(exact, rel=0.15), (
        f"{name}: fast {fast:,} vs exact {exact:,}"
    )


@pytest.mark.parametrize("name", sorted(TINY))
def test_access_counts_identical(name):
    """Both models process the same declared sweeps."""
    res = run_both(name)
    assert res["fast"].memory.accesses == res["exact"].memory.accesses


@pytest.mark.parametrize("name", ["mmult", "qsort"])
def test_coherence_profiles_close(name):
    """Producer/consumer coherence transfers match closely (they are
    exact per line in both models)."""
    res = run_both(name)
    f = res["fast"].memory.coherence_misses
    e = res["exact"].memory.coherence_misses
    assert f == pytest.approx(e, rel=0.2, abs=32), f"{name}: {f} vs {e}"
