"""Tests for the simulated runtime driver and the protocol adapters."""

import numpy as np
import pytest

from repro.core import ProgramBuilder
from repro.runtime.simdriver import SimulatedRuntime, run_sequential_timed
from repro.sim.machine import BAGLE_27, XEON_8
from repro.tsu.hardware import HardwareTSUAdapter
from repro.tsu.policy import round_robin_placement
from repro.tsu.software import SoftTSUCosts, SoftwareTSUAdapter


def parallel_sum_program(nchunks=8, chunk_cost=1000):
    """nchunks independent DThreads + a reduction."""
    b = ProgramBuilder("psum")
    b.env.alloc("parts", nchunks)

    def work(env, i):
        env.array("parts")[i] = i + 1

    def total(env, _):
        env.set("total", float(env.array("parts").sum()))

    t1 = b.thread("work", body=work, contexts=nchunks, cost=lambda e, c: chunk_cost)
    t2 = b.thread("total", body=total, cost=lambda e, c: 10)
    b.depends(t1, t2, "all")
    return b.build()


def pipeline_program(depth=5, cost=100):
    """A pure chain: no parallelism available."""
    b = ProgramBuilder("chain")
    b.env.set("acc", 0)
    prev = None
    for d in range(depth):
        t = b.thread(
            f"stage{d}",
            body=lambda env, _, d=d: env.set("acc", env.get("acc") + 1),
            cost=lambda e, c: cost,
        )
        if prev is not None:
            b.depends(prev, t)
        prev = t
    return b.build()


# -- zero-overhead driver behaviour -------------------------------------------------
def test_functional_result_correct():
    prog = parallel_sum_program(8)
    res = SimulatedRuntime(prog, BAGLE_27, nkernels=4).run()
    assert res.env.get("total") == 36.0
    assert res.total_dthreads == 9


def test_single_kernel_equals_work_sum():
    prog = parallel_sum_program(8, chunk_cost=1000)
    res = SimulatedRuntime(prog, BAGLE_27, nkernels=1).run()
    # 8*1000 + 10 + memory costs for parts array accesses.
    assert res.cycles >= 8010
    assert res.cycles < 8010 + 5000


def test_parallel_speedup_with_zero_overhead():
    prog1 = parallel_sum_program(8, chunk_cost=10_000)
    seq = SimulatedRuntime(prog1, BAGLE_27, nkernels=1).run()
    prog8 = parallel_sum_program(8, chunk_cost=10_000)
    par = SimulatedRuntime(prog8, BAGLE_27, nkernels=8).run()
    speedup = seq.cycles / par.cycles
    assert speedup > 6.5  # near-linear for embarrassing parallelism


def test_chain_has_no_speedup():
    seq = SimulatedRuntime(pipeline_program(), BAGLE_27, nkernels=1).run()
    par = SimulatedRuntime(pipeline_program(), BAGLE_27, nkernels=8).run()
    assert par.cycles >= seq.cycles * 0.95


def test_runtime_single_use():
    rt = SimulatedRuntime(parallel_sum_program(), BAGLE_27, nkernels=2)
    rt.run()
    with pytest.raises(RuntimeError):
        rt.run()


def test_too_many_kernels_rejected():
    with pytest.raises(ValueError):
        SimulatedRuntime(parallel_sum_program(), XEON_8, nkernels=9)


def test_kernel_stats_accounted():
    prog = parallel_sum_program(8, chunk_cost=500)
    res = SimulatedRuntime(prog, BAGLE_27, nkernels=4).run()
    assert sum(k.dthreads for k in res.kernels) == 9
    busy = sum(k.core.compute_cycles for k in res.kernels)
    assert busy == 8 * 500 + 10


def test_multi_block_execution():
    prog = parallel_sum_program(8, chunk_cost=100)
    res = SimulatedRuntime(prog, BAGLE_27, nkernels=2, tsu_capacity=3).run()
    assert res.env.get("total") == 36.0


def test_round_robin_placement_also_correct():
    prog = parallel_sum_program(8)
    res = SimulatedRuntime(
        prog, BAGLE_27, nkernels=3, placement=round_robin_placement
    ).run()
    assert res.env.get("total") == 36.0


def test_prologue_epilogue_timed():
    b = ProgramBuilder("pe")
    b.prologue("init", body=lambda env: env.set("x", 1), cost=lambda env: 5000)
    b.thread("t", body=lambda env, _: env.set("y", env.get("x") + 1), cost=lambda e, c: 100)
    b.epilogue("fini", body=lambda env: env.set("z", env.get("y") + 1), cost=lambda env: 3000)
    res = SimulatedRuntime(b.build(), BAGLE_27, nkernels=2).run()
    assert res.env.get("z") == 3
    assert res.cycles >= 8100


def test_exact_memory_mode_runs():
    from repro.sim.accesses import AccessSummary

    b = ProgramBuilder("pmem")
    b.env.alloc("parts", 4)
    reg = b.env.region("parts")

    def work(env, i):
        env.array("parts")[i] = i + 1

    t1 = b.thread(
        "work",
        body=work,
        contexts=4,
        cost=lambda e, c: 100,
        accesses=lambda e, i: AccessSummary().write(reg, offset=i * 8, count=1),
    )
    t2 = b.thread(
        "total",
        body=lambda env, _: env.set("total", float(env.array("parts").sum())),
        accesses=lambda e, _: AccessSummary().read(reg),
    )
    b.depends(t1, t2, "all")
    res = SimulatedRuntime(b.build(), BAGLE_27, nkernels=2, exact_memory=True).run()
    assert res.env.get("total") == 10.0
    assert res.memory.accesses > 0


# -- sequential baseline ---------------------------------------------------------
def test_sequential_baseline_no_tsu_overhead():
    prog = parallel_sum_program(8, chunk_cost=1000)
    res = run_sequential_timed(prog, BAGLE_27)
    assert res.env.get("total") == 36.0
    assert res.nkernels == 1
    # compute cycles + memory; strictly no TSU cost included.
    assert res.cycles >= 8010


def test_sequential_baseline_leq_1kernel_hardware_run():
    seq = run_sequential_timed(parallel_sum_program(8, 1000), BAGLE_27)
    hard = SimulatedRuntime(
        parallel_sum_program(8, 1000),
        BAGLE_27,
        nkernels=1,
        adapter_factory=lambda e, t: HardwareTSUAdapter(e, t),
        platform_name="tfluxhard",
    ).run()
    assert seq.cycles <= hard.cycles  # TFlux overheads are real


# -- hardware adapter -----------------------------------------------------------
def test_hardware_adapter_correct_and_overheads_small():
    prog = parallel_sum_program(16, chunk_cost=20_000)
    res = SimulatedRuntime(
        prog,
        BAGLE_27,
        nkernels=8,
        adapter_factory=lambda e, t: HardwareTSUAdapter(e, t),
    ).run()
    assert res.env.get("total") == 136.0
    seq = run_sequential_timed(parallel_sum_program(16, 20_000), BAGLE_27)
    assert seq.cycles / res.cycles > 6.0


def test_hardware_tsu_latency_sweep_monotone():
    """Raising TSU processing time cannot speed execution up."""
    cycles = []
    for lat in (1, 4, 128):
        prog = parallel_sum_program(16, chunk_cost=5_000)
        res = SimulatedRuntime(
            prog,
            BAGLE_27,
            nkernels=8,
            adapter_factory=lambda e, t, lat=lat: HardwareTSUAdapter(
                e, t, tsu_processing_cycles=lat
            ),
        ).run()
        cycles.append(res.cycles)
    assert cycles[0] <= cycles[1] <= cycles[2]


def test_hardware_tsu_latency_small_impact_on_coarse_threads():
    """The paper's §4.1 claim: 1 -> 128 cycles costs <1% when DThreads are
    coarse enough."""
    results = {}
    for lat in (1, 128):
        prog = parallel_sum_program(32, chunk_cost=600_000)
        res = SimulatedRuntime(
            prog,
            BAGLE_27,
            nkernels=8,
            adapter_factory=lambda e, t, lat=lat: HardwareTSUAdapter(
                e, t, tsu_processing_cycles=lat
            ),
        ).run()
        results[lat] = res.cycles
    assert (results[128] - results[1]) / results[1] < 0.01


# -- software adapter ---------------------------------------------------------------
def test_software_adapter_correct():
    prog = parallel_sum_program(16, chunk_cost=50_000)
    res = SimulatedRuntime(
        prog,
        XEON_8,
        nkernels=6,
        adapter_factory=lambda e, t: SoftwareTSUAdapter(e, t),
        platform_name="tfluxsoft",
    ).run()
    assert res.env.get("total") == 136.0


def test_software_overhead_exceeds_hardware():
    """Per-DThread cost is higher on TFluxSoft (paper §6.2.2)."""

    def run_with(factory, machine, nk):
        prog = parallel_sum_program(32, chunk_cost=2_000)
        return SimulatedRuntime(
            prog, machine, nkernels=nk, adapter_factory=factory
        ).run().cycles

    hard = run_with(lambda e, t: HardwareTSUAdapter(e, t), BAGLE_27, 4)
    soft = run_with(lambda e, t: SoftwareTSUAdapter(e, t), XEON_8, 4)
    assert soft > hard


def test_software_emulator_stats_populated():
    prog = parallel_sum_program(8, chunk_cost=10_000)
    adapters = []

    def factory(e, t):
        a = SoftwareTSUAdapter(e, t)
        adapters.append(a)
        return a

    SimulatedRuntime(prog, XEON_8, nkernels=4, adapter_factory=factory).run()
    (a,) = adapters
    assert a.emulator_items == 9
    assert a.emulator_busy_cycles > 0
    assert a.tub_pushes == 9


def test_software_coarse_threads_amortise_overhead():
    """Bigger DThreads -> better TFluxSoft efficiency (unrolling claim)."""

    def eff(chunk_cost, nchunks):
        prog = parallel_sum_program(nchunks, chunk_cost=chunk_cost)
        par = SimulatedRuntime(
            prog,
            XEON_8,
            nkernels=4,
            adapter_factory=lambda e, t: SoftwareTSUAdapter(e, t),
        ).run()
        seq = run_sequential_timed(
            parallel_sum_program(nchunks, chunk_cost=chunk_cost), XEON_8
        )
        return seq.cycles / par.cycles

    fine = eff(chunk_cost=1_000, nchunks=64)
    coarse = eff(chunk_cost=16_000, nchunks=4)
    assert coarse > fine
