"""Tests for the Cell/BE substrate and the TFluxCell platform."""

import numpy as np
import pytest

from repro.apps import get_benchmark, problem_sizes
from repro.cell.commandbuffer import Command, CommandBuffer
from repro.cell.dma import DMAEngine
from repro.cell.localstore import CellLocalStoreError, LocalStore
from repro.cell.mailbox import Mailbox
from repro.core import ProgramBuilder
from repro.platforms import TFluxCell, TFluxHard
from repro.sim.accesses import AccessSummary, RegionSpace
from repro.sim.engine import Engine


# -- LocalStore ------------------------------------------------------------
def test_localstore_budget():
    ls = LocalStore(capacity=256 * 1024, reserved=48 * 1024)
    assert ls.data_budget == 208 * 1024
    ls.require(100_000)
    assert ls.high_watermark == 100_000


def test_localstore_overflow_raises():
    ls = LocalStore()
    with pytest.raises(CellLocalStoreError, match="Local Store"):
        ls.require(300_000, what="huge DThread")


# -- DMA --------------------------------------------------------------------
def test_dma_transfer_cost_scales():
    dma = DMAEngine(setup_cycles=300, cycles_per_line=4, line_size=128)
    small = dma.transfer_cycles(128)
    big = dma.transfer_cycles(128 * 100)
    assert small == 304
    assert big == 300 + 400


def test_dma_streamed_transfer_pays_per_tile_setup():
    dma = DMAEngine(setup_cycles=300, cycles_per_line=4, line_size=128,
                    stream_tile_bytes=1024)
    streamed = dma.transfer_cycles(4096, streamed=True)
    assert streamed == 300 * 4 + 32 * 4


def test_dma_import_export_split():
    space = RegionSpace()
    r = space.region("r", 4096)
    dma = DMAEngine()
    s = AccessSummary().read(r, count=256).write(r, count=128)
    imp, exp = dma.import_cycles(s), dma.export_cycles(s)
    assert imp > exp > 0


def test_dma_working_set_streamed_vs_resident():
    space = RegionSpace()
    big = space.region("big", 1 << 20)
    dma = DMAEngine(stream_tile_bytes=16 * 1024)
    resident = AccessSummary().read(big)
    streamed = AccessSummary().read(big, resident=False)
    assert dma.working_set_bytes(resident) == 1 << 20
    assert dma.working_set_bytes(streamed) == 32 * 1024


# -- Mailbox --------------------------------------------------------------------
def test_mailbox_latency_and_fifo():
    eng = Engine()
    mbox = Mailbox(eng, latency=100)
    received = []

    def reader(eng, mbox):
        for _ in range(2):
            v = yield from mbox.receive()
            received.append((eng.now, v))

    eng.process(reader(eng, mbox))
    mbox.send("a")
    mbox.send("b")
    eng.run()
    assert received == [(100, "a"), (100, "b")]


def test_mailbox_overflow():
    eng = Engine()
    mbox = Mailbox(eng, capacity=1, latency=1)
    mbox.send("a")
    mbox.send("b")
    with pytest.raises(OverflowError):
        eng.run()


# -- CommandBuffer ------------------------------------------------------------------
def test_command_buffer_capacity():
    cb = CommandBuffer(size_bytes=128)
    assert cb.capacity == 8
    for i in range(8):
        assert cb.try_write(Command("complete", 0, i))
    assert not cb.try_write(Command("complete", 0, 9))
    assert cb.stalls == 1
    assert len(cb.drain()) == 8
    assert len(cb) == 0


# -- platform end-to-end ----------------------------------------------------------
def parallel_sum_program(nchunks=12, chunk_cost=50_000):
    b = ProgramBuilder("psum")
    b.env.alloc("parts", nchunks)

    def work(env, i):
        env.array("parts")[i] = i + 1

    t1 = b.thread("work", body=work, contexts=nchunks, cost=lambda e, c: chunk_cost)
    t2 = b.thread(
        "total",
        body=lambda env, _: env.set("total", float(env.array("parts").sum())),
    )
    b.depends(t1, t2, "all")
    return b.build()


def test_cell_executes_program():
    plat = TFluxCell()
    res = plat.execute(parallel_sum_program(), nkernels=4)
    assert res.env.get("total") == 78.0
    assert res.cycles > 0


def test_cell_max_kernels_is_six():
    plat = TFluxCell()
    assert plat.max_kernels == 6
    with pytest.raises(ValueError):
        plat.execute(parallel_sum_program(), nkernels=7)


def test_cell_overhead_exceeds_hardware_tsu():
    cell = TFluxCell().execute(parallel_sum_program(), nkernels=4)
    hard = TFluxHard().execute(parallel_sum_program(), nkernels=4)
    assert cell.cycles > hard.cycles


def test_cell_parallel_speedup_on_coarse_threads():
    par = TFluxCell().execute(parallel_sum_program(12, 400_000), nkernels=6)
    seq = TFluxCell().sequential_baseline(parallel_sum_program(12, 400_000))
    assert seq.cycles / par.cycles > 4.0


def test_cell_ppe_stats_populated():
    plat = TFluxCell()
    prog = parallel_sum_program()
    runtime_adapters = []
    factory = plat.adapter_factory()

    def spy(engine, tsu):
        a = factory(engine, tsu)
        runtime_adapters.append(a)
        return a

    from repro.runtime.simdriver import SimulatedRuntime

    res = SimulatedRuntime(
        prog, plat.machine, nkernels=3, adapter_factory=spy, platform_name="tfluxcell"
    ).run()
    (a,) = runtime_adapters
    assert a.ppe_commands >= 13  # 13 completions + fetches
    assert a.ppe_busy_cycles > 0
    assert a.shared_buffer.exports >= 0
    assert res.env.get("total") == 78.0


def test_cell_local_store_rejects_oversized_thread():
    b = ProgramBuilder("big")
    big = b.env.alloc("big", 300_000 // 8)
    reg = b.env.region("big")
    b.thread(
        "hog",
        body=lambda env, _: None,
        accesses=lambda env, _: AccessSummary().read(reg),
    )
    with pytest.raises(CellLocalStoreError, match="Local Store"):
        TFluxCell().execute(b.build(), nkernels=2)


def test_cell_qsort_large_native_size_hits_local_store_wall():
    """§6.3: QSORT sizes beyond the Cell grid cannot run (LS capacity)."""
    bench = get_benchmark("qsort")
    big = problem_sizes("qsort", "N")["large"]  # 50K elements
    prog = bench.build(big, unroll=8)
    with pytest.raises(Exception) as err:
        TFluxCell().execute(prog, nkernels=4)
    assert "Local Store" in str(err.value) or "Local Store" in str(err.value.__cause__)


def test_cell_qsort_cell_sizes_run():
    bench = get_benchmark("qsort")
    size = problem_sizes("qsort", "C")["large"]  # 12K elements
    prog = bench.build(size, unroll=8)
    res = TFluxCell().execute(prog, nkernels=4)
    bench.verify(res.env, size)


@pytest.mark.parametrize("name", ["trapez", "mmult", "qsort", "susan"])
def test_cell_runs_figure7_benchmarks(name):
    """The four Figure-7 workloads execute correctly on TFluxCell."""
    bench = get_benchmark(name)
    size = problem_sizes(name, "C")["small"]
    prog = bench.build(size, unroll=32, max_threads=256)
    res = TFluxCell().execute(prog, nkernels=4)
    bench.verify(res.env, size)
