"""The ``unrolls="auto"`` adaptive search (repro.exec.pool).

The A2 protocol takes the best speedup over the unroll grid; the
adaptive search must find the *same* best cell (unroll, speedup —
earliest-tie-break included) while simulating strictly fewer points, and
its probes must route through the same job/caching machinery as the
grid.
"""

import pytest

from repro.apps.common import ProblemSize
from repro.exec import UNROLL_LADDER, EvalRequest, clear_baseline_memo, evaluate_many
from repro.exec.pool import _AUTO_PROBES, _auto_frontier, JobOutcome
from repro.platforms import TFluxHard, TFluxSoft

SIZES = {
    "trapez": ProblemSize("trapez", "S", "t", {"k": 12}),
    "fft": ProblemSize("fft", "S", "t", {"n": 32}),
    "qsort": ProblemSize("qsort", "S", "t", {"n": 2048}),
}


@pytest.fixture(autouse=True)
def _fresh_baselines():
    clear_baseline_memo()
    yield
    clear_baseline_memo()


@pytest.mark.parametrize(
    "platform_cls, bench, nkernels",
    [
        (TFluxHard, "trapez", 8),
        (TFluxHard, "fft", 4),
        (TFluxSoft, "qsort", 4),
    ],
)
def test_auto_matches_grid_with_fewer_simulations(platform_cls, bench, nkernels):
    platform = platform_cls()
    size = SIZES[bench]
    grid = evaluate_many(
        [EvalRequest(platform, bench, size, nkernels)], cache=None
    )[0]
    auto = evaluate_many(
        [EvalRequest(platform, bench, size, nkernels, unrolls="auto")],
        cache=None,
    )[0]
    assert auto.best_unroll == grid.best_unroll
    assert auto.speedup == pytest.approx(grid.speedup, rel=0, abs=0)
    # per_unroll holds exactly the evaluated points: strictly fewer sims.
    assert len(auto.per_unroll) < len(UNROLL_LADDER)
    assert set(auto.per_unroll) <= set(UNROLL_LADDER)
    # Every probed point agrees with the grid's measurement of it.
    for unroll, speedup in auto.per_unroll.items():
        assert speedup == pytest.approx(grid.per_unroll[unroll])


def test_batched_auto_and_grid_requests_mix():
    platform = TFluxHard()
    size = SIZES["trapez"]
    evaluations = evaluate_many(
        [
            EvalRequest(platform, "trapez", size, 4, unrolls="auto"),
            EvalRequest(platform, "trapez", size, 4),
        ],
        cache=None,
    )
    assert evaluations[0].best_unroll == evaluations[1].best_unroll
    assert evaluations[0].speedup == pytest.approx(evaluations[1].speedup)


def test_bad_unrolls_string_rejected():
    platform = TFluxHard()
    with pytest.raises(ValueError, match="'auto'"):
        evaluate_many(
            [EvalRequest(platform, "trapez", SIZES["trapez"], 4, unrolls="fast")],
            cache=None,
        )


# -- the frontier rule, in isolation ------------------------------------------
def _outcome(cycles):
    return JobOutcome(cycles=cycles, region_cycles=cycles)


def test_frontier_expands_neighbours_of_best():
    seq = 1000
    evaluated = {1: _outcome(500), 8: _outcome(250), 64: _outcome(400)}
    assert _auto_frontier(evaluated, seq) == [4, 16]


def test_frontier_plateau_slides_left():
    """Equal speedups keep the earliest unroll (the _assemble rule), so a
    plateau walks toward smaller factors until it is bracketed."""
    seq = 1000
    evaluated = {1: _outcome(500), 8: _outcome(250), 64: _outcome(400)}
    evaluated[4] = _outcome(250)  # ties 8 -> best moves to 4
    evaluated[16] = _outcome(300)
    assert _auto_frontier(evaluated, seq) == [2]
    evaluated[2] = _outcome(260)
    assert _auto_frontier(evaluated, seq) == []  # bracketed: done


def test_frontier_initial_probes_cover_ladder_extremes():
    assert _AUTO_PROBES[0] == UNROLL_LADDER[0]
    assert _AUTO_PROBES[-1] == UNROLL_LADDER[-1]
