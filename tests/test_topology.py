"""Topology wirings and the hierarchical (cluster-head relay) TSU.

Covers, in order:

* path/hop structure of the three wirings and their pickling;
* the Network pricing per-hop latency and shared-uplink congestion
  (control and data planes) with the new ``net.hops`` /
  ``net.link_queue_cycles`` counters;
* FullMesh backward compatibility — the default Network is cycle-exact
  against the pre-topology arithmetic (also pinned by test_dist);
* HierDistTSUAdapter — degenerate cluster == flat adapter bit-identical,
  relayed runs stay functionally correct and count relayed messages,
  and the TFluxDist platform wires topology/cluster through (including
  into the RunRecord's new ``topology`` field).
"""

import pickle

import pytest

from repro.core import ProgramBuilder
from repro.net import (
    FatTree,
    FullMesh,
    Message,
    MsgKind,
    NetParams,
    Network,
    OversubscribedSpine,
)
from repro.platforms.dist import TFluxDist
from repro.sim.capability import DirectoryCapacityError
from repro.sim.engine import Engine

NET = NetParams()  # latency 400, 16 B/cycle, NIC 120, header 64


# -- wiring structure ---------------------------------------------------------
def test_fullmesh_paths():
    t = FullMesh()
    assert t.control_path(0, 5) == ((0, 5),)
    assert t.data_path(0, 5) == ()
    assert t.hops(0, 5) == 1
    assert t.describe() == "fullmesh"


def test_fattree_paths():
    t = FatTree(pod_size=4)
    # Intra-pod: up at the source, down at the destination.
    assert t.control_path(0, 3) == (("up", 0), ("down", 3))
    assert t.data_path(0, 3) == ()
    assert t.hops(0, 3) == 2
    # Inter-pod: 4 hops through one of the pod's uplinks.
    path = t.control_path(0, 5)
    assert len(path) == 4 and t.hops(0, 5) == 4
    assert path[0] == ("up", 0) and path[-1] == ("down", 5)
    assert t.data_path(0, 5) == (path[1], path[2])
    # Full fat-tree: as many uplinks as pod members.
    assert t._uplinks == 4
    assert t.describe() == "fattree(pod=4,up=4)"


def test_spine_oversubscription_shares_uplinks():
    t = OversubscribedSpine(pod_size=8, oversubscription=4)
    assert t._uplinks == 2
    # Flows from 8 sources to one destination pod share 2 uplinks.
    uplinks = {t.control_path(s, 8)[1] for s in range(8)}
    assert len(uplinks) == 2
    assert t.describe() == "spine(pod=8,oversub=4)"
    with pytest.raises(ValueError):
        OversubscribedSpine(pod_size=8, oversubscription=0)
    with pytest.raises(ValueError):
        OversubscribedSpine(pod_size=8, uplinks=3)


def test_topologies_pickle_and_validate():
    for t in (FullMesh(), FatTree(pod_size=8), OversubscribedSpine(pod_size=8)):
        assert pickle.loads(pickle.dumps(t)) == t
        t.validate(64)
        with pytest.raises(DirectoryCapacityError):
            t.validate(65)


# -- network pricing over a topology -----------------------------------------
def test_transmit_pays_per_hop_latency_on_fattree():
    eng = Engine()
    net = Network(eng, 8, NET, FatTree(pod_size=4))
    done = []
    net.transmit(Message(MsgKind.READY_UPDATE, 0, 5, payload_bytes=16), done.append)
    eng.run()
    # 80 B = 5 cycles at line rate; NIC 120+5, then 4 hops of (5 + 400).
    assert eng.now == 125 + 4 * (5 + 400)
    assert net.hops == 4
    assert done and net.link_queue_cycles == 0


def test_intra_pod_is_two_hops():
    eng = Engine()
    net = Network(eng, 8, NET, FatTree(pod_size=4))
    net.transmit(Message(MsgKind.READY_UPDATE, 0, 3, payload_bytes=16))
    eng.run()
    assert eng.now == 125 + 2 * (5 + 400)
    assert net.hops == 2


def test_data_pulls_queue_on_oversubscribed_uplinks():
    # pod_size 4, oversub 4 -> ONE uplink per pod: every inter-pod pull
    # from pod 0 to pod 1 serialises through the same spine link.
    eng = Engine()
    topo = OversubscribedSpine(pod_size=4, oversubscription=4)
    net = Network(eng, 8, NET, topo)
    ser = NET.serialize_cycles(1024)
    # Uncontended: store-and-forward re-serialisation on each of the two
    # shared spine segments, then 4 hops of propagation.
    first = net.pull(4, {0: 1024})
    assert first == 2 * ser + 4 * NET.link_latency_cycles
    # Same instant, different destination node in pod 1, same uplink:
    # the shared spine link has not drained yet.
    second = net.pull(5, {1: 1024})
    assert second > first
    assert net.link_queue_cycles > 0
    assert net.hops == 8  # two pulls x four hops each


def test_fullmesh_pull_matches_pre_topology_arithmetic():
    eng = Engine()
    net = Network(eng, 3, NET)  # default FullMesh
    assert net.pull(0, {1: 1024}) == NET.serialize_cycles(1024) + 400
    assert net.link_queue_cycles == 0 and net.hops == 1


# -- hierarchical TSU ---------------------------------------------------------
def _program(n=24):
    b = ProgramBuilder("hier")
    b.env.alloc("out", n)
    t = b.thread(
        "w", body=lambda env, i: env.array("out").__setitem__(i, i + 1), contexts=n
    )
    red = b.thread(
        "r", body=lambda env, _: env.set("total", float(env.array("out").sum()))
    )
    b.depends(t, red, "all")
    return b.build()


def _run(nnodes, cluster_size=None, topology=None):
    platform = TFluxDist(
        nnodes=nnodes, topology=topology, cluster_size=cluster_size
    )
    return platform.execute(_program(), nkernels=6 * nnodes)


def test_degenerate_cluster_is_bit_identical_to_flat():
    flat = _run(4)
    hier = _run(4, cluster_size=8)  # one cluster spans all nodes
    assert hier.cycles == flat.cycles
    assert hier.env.get("total") == flat.env.get("total") == sum(range(1, 25))
    assert hier.counters.get("net.relayed_messages") == 0


def test_cluster_relay_correct_and_counted():
    flat = _run(8)
    hier = _run(8, cluster_size=2)
    assert hier.env.get("total") == flat.env.get("total")
    assert hier.counters.get("net.relayed_messages") > 0
    # Relaying can only reduce the messages the *source* NIC serialises;
    # totals include the head-to-member re-sends.
    assert hier.counters.get("net.messages") >= flat.counters.get("net.messages")


def test_platform_records_topology_and_pickles():
    platform = TFluxDist(
        nnodes=4, topology=FatTree(pod_size=2), cluster_size=2
    )
    assert pickle.loads(pickle.dumps(platform)).topology == FatTree(pod_size=2)
    res = platform.execute(_program(), nkernels=24)
    assert res.env.get("total") == sum(range(1, 25))
    record = res.to_record()
    assert record.topology == "fattree(pod=2,up=2)"
    assert record.counters.get("net.hops") > 0
    flat_record = _run(4).to_record()
    assert flat_record.topology == "fullmesh"
