"""Unit tests for the multiple-TSU-Group hardware adapter (§4.1 extension)."""

import pytest

from repro.core import ProgramBuilder
from repro.runtime.simdriver import SimulatedRuntime
from repro.sim.engine import Engine
from repro.sim.machine import BAGLE_27
from repro.tsu.group import TSUGroup
from repro.tsu.multigroup import MultiGroupHardwareAdapter


def fanout_program(nchunks=16, cost=2000):
    b = ProgramBuilder("fan")
    b.env.alloc("parts", nchunks)
    t1 = b.thread(
        "work",
        body=lambda env, i: env.array("parts").__setitem__(i, i),
        contexts=nchunks,
        cost=lambda e, c: cost,
    )
    t2 = b.thread(
        "total",
        body=lambda env, _: env.set("total", float(env.array("parts").sum())),
    )
    b.depends(t1, t2, "all")
    return b.build()


def make_adapter(nkernels=8, n_groups=2):
    blocks = fanout_program().blocks()
    engine = Engine()
    tsu = TSUGroup(nkernels, blocks)
    return MultiGroupHardwareAdapter(engine, tsu, n_groups=n_groups)


def test_kernel_partition_contiguous():
    a = make_adapter(nkernels=8, n_groups=2)
    groups = [a.group_of_kernel(k) for k in range(8)]
    assert groups == [0, 0, 0, 0, 1, 1, 1, 1]


def test_kernel_partition_uneven():
    a = make_adapter(nkernels=7, n_groups=3)
    groups = [a.group_of_kernel(k) for k in range(7)]
    assert groups == sorted(groups)
    assert set(groups) == {0, 1, 2}


def test_one_device_per_group():
    a = make_adapter(n_groups=4, nkernels=8)
    assert len(a.mmis) == 4
    assert len(a.buses) == 4
    assert a.mmis[0] is not a.mmis[1]


def test_invalid_group_counts():
    with pytest.raises(ValueError):
        make_adapter(nkernels=4, n_groups=0)
    with pytest.raises(ValueError):
        make_adapter(nkernels=4, n_groups=5)


def run_with_groups(n_groups, nkernels=8, cost=2000, lat=4):
    prog = fanout_program(cost=cost)
    adapters = []

    def factory(engine, tsu):
        a = MultiGroupHardwareAdapter(
            engine, tsu, n_groups=n_groups, tsu_processing_cycles=lat
        )
        adapters.append(a)
        return a

    res = SimulatedRuntime(
        prog, BAGLE_27, nkernels=nkernels, adapter_factory=factory
    ).run()
    return res, adapters[0]


def test_functional_correctness_any_group_count():
    for g in (1, 2, 4, 8):
        res, _ = run_with_groups(g)
        assert res.env.get("total") == sum(range(16))


def test_single_group_matches_plain_hardware_adapter():
    """n_groups=1 must be semantically identical to HardwareTSUAdapter."""
    from repro.tsu.hardware import HardwareTSUAdapter

    res_multi, _ = run_with_groups(1)
    res_plain = SimulatedRuntime(
        fanout_program(),
        BAGLE_27,
        nkernels=8,
        adapter_factory=lambda e, t: HardwareTSUAdapter(e, t),
    ).run()
    assert res_multi.cycles == res_plain.cycles


def test_intergroup_transfers_counted():
    """The reduction consumer sits in one group; producers in the other
    group must report cross-group updates."""
    _, adapter = run_with_groups(2)
    assert adapter.intergroup_transfers > 0


def test_contention_relief_under_high_latency():
    slow1, _ = run_with_groups(1, cost=200, lat=64)
    slow2, _ = run_with_groups(2, cost=200, lat=64)
    assert slow2.cycles < slow1.cycles
