"""A1 — §4.1/§6.1.1 ablation: hardware TSU processing latency.

"increasing this processing time from 1 to 128 CPU cycles, has less than
1% impact on the performance."  Sweeps the latency over the Figure-5
workloads at 27 kernels and checks the claim.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import problem_sizes
from repro.exec import JobSpec, run_job, run_jobs
from repro.platforms import TFluxHard

BENCHES = ("trapez", "mmult", "qsort", "susan", "fft")
LATENCIES = (1, 4, 16, 64, 128)


def _spec(bench_name: str, latency: int, unroll: int = 8) -> JobSpec:
    return JobSpec(
        platform=TFluxHard(tsu_processing_cycles=latency),
        bench=bench_name,
        size=problem_sizes(bench_name, "S")["large"],
        nkernels=27,
        unroll=unroll,
        max_threads=1024,
        mode="execute",
    )


def _cycles(bench_name: str, latency: int, unroll: int = 8) -> int:
    return run_job(_spec(bench_name, latency, unroll)).region_cycles


@pytest.fixture(scope="module")
def sweep():
    # 25 independent (benchmark, latency) simulations in one exec batch.
    specs = [_spec(bench, lat) for bench in BENCHES for lat in LATENCIES]
    outcomes = iter(run_jobs(specs))
    return {
        bench: {lat: next(outcomes).region_cycles for lat in LATENCIES}
        for bench in BENCHES
    }


def test_latency_sweep_table(sweep):
    lines = [
        "A1 — TSU processing latency sweep (region cycles, 27 kernels, large)",
        f"{'benchmark':<9} " + "".join(f"{lat:>12}" for lat in LATENCIES)
        + f"{'delta 1->128':>14}",
    ]
    for bench, row in sweep.items():
        delta = (row[128] - row[1]) / row[1]
        lines.append(
            f"{bench.upper():<9} "
            + "".join(f"{row[lat]:>12,}" for lat in LATENCIES)
            + f"{delta:>13.2%}"
        )
    report("\n".join(lines))


def test_impact_below_paper_bound(sweep):
    """The paper's <1% claim.

    Checked as the *workload-weighted* impact (total extra cycles over
    total cycles): our simulated FFT region is only ~160K cycles, so its
    per-barrier TSU-port serialisation — a few thousand cycles in absolute
    terms — looks large relatively while being irrelevant at the paper's
    real input scales.  Individual benchmarks stay under 2% except that
    small-region case.
    """
    total_base = sum(row[1] for row in sweep.values())
    total_slow = sum(row[128] for row in sweep.values())
    weighted = (total_slow - total_base) / total_base
    assert weighted < 0.01, f"weighted impact {weighted:.2%} >= 1%"
    for bench, row in sweep.items():
        delta = (row[128] - row[1]) / row[1]
        bound = 0.02 if row[1] > 1_000_000 else 0.20
        assert delta < bound, f"{bench}: 1->128 cycles costs {delta:.2%}"


def test_latency_never_helps(sweep):
    for bench, row in sweep.items():
        series = [row[lat] for lat in LATENCIES]
        for a, b in zip(series, series[1:]):
            assert b >= a * 0.999, f"{bench}: non-monotone {series}"


def test_ablation_benchmark(benchmark):
    """pytest-benchmark: one latency evaluation cell."""
    result = benchmark.pedantic(
        lambda: _cycles("trapez", 128, unroll=16), rounds=1, iterations=1
    )
    assert result > 0
