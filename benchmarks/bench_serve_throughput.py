"""P9 — serving-layer sustained throughput (jobs/sec, 1/4/16 clients).

Drives a real ``tflux-serve`` instance (in-thread, real TCP sockets)
with closed-loop clients — each submits one-job batches back to back —
under the two workload extremes the frontier is built for:

* **high-dedup**: every client submits the *same* small grid, so after
  the first flight per unique spec the server answers from the
  single-flight table or the in-memory LRU.  Throughput here is the
  serving layer itself (protocol + scheduler + LRU), and the
  single-flight invariant is asserted exactly: with the disk cache off,
  ``executed == unique specs`` and every duplicate is accounted as a
  coalesced flight or an LRU hit — however 16 racing clients interleave.
* **no-dedup**: every job is a distinct spec (distinct ``max_threads``
  values mint fresh digests at near-identical simulation cost), so
  throughput is bounded by the worker pool and should scale with
  concurrent clients when the host has the cores to back it.

Measurements land in ``BENCH_PR9.json`` at the repo root.  The
4-vs-1-client scaling assertion (≥2x) only applies on hosts with ≥4
CPUs — a 1-CPU host runs the pool serially, which the JSON annotates
(same convention as BENCH_PR8's ``parallel_skipped``).

Also runnable standalone::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from benchmarks.conftest import FULL, report
from repro.serve import ServeClient, ServeConfig, job_to_wire, serve_in_thread

OUT_PATH = Path(__file__).resolve().parent.parent / "BENCH_PR9.json"

#: Distinct max_threads values change the spec digest but barely the
#: simulated work (trapez small, nk=2 runs ~10-30ms at this cap).
_BASE_MAX_THREADS = 64

CLIENT_COUNTS = (1, 4, 16)
UNIQUE_JOBS = 8 if FULL else 6  # high-dedup grid size
ROUNDS = 6 if FULL else 3  # high-dedup rounds per client
JOBS_PER_CLIENT = 12 if FULL else 6  # no-dedup stream per client


def _job(i: int) -> dict:
    return job_to_wire(
        "trapez", nkernels=2, unroll=1, max_threads=_BASE_MAX_THREADS + i
    )


def _run_clients(address, nclients: int, jobs_for) -> tuple[float, int, list]:
    """Closed-loop drive: *nclients* threads each submit their job list
    as one-job batches, back to back.  Returns (seconds, total, batches)."""
    per_client = [list(jobs_for(c)) for c in range(nclients)]
    results: list = [None] * nclients
    errors: list = []
    barrier = threading.Barrier(nclients + 1)

    def client(c: int) -> None:
        try:
            with ServeClient(address, tenant=f"client{c}") as cl:
                barrier.wait()
                batches = []
                for job in per_client[c]:
                    batch = cl.submit([job])
                    assert batch.ok, batch.message
                    batches.append(batch)
                results[c] = batches
        except Exception as exc:  # pragma: no cover - diagnostic
            errors.append(exc)
            barrier.abort()

    threads = [threading.Thread(target=client, args=(c,)) for c in range(nclients)]
    for t in threads:
        t.start()
    barrier.wait()  # all clients connected: start the clock
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    if errors:
        raise errors[0]
    return elapsed, sum(len(jobs) for jobs in per_client), results


def _measure(nclients: int, jobs_for, workers: int) -> dict:
    """One phase on a fresh server (fresh LRU/counters, disk cache off)."""
    handle = serve_in_thread(
        config=ServeConfig(workers=workers, lru_capacity=4096), cache=None
    )
    try:
        elapsed, total, results = _run_clients(handle.address, nclients, jobs_for)
        with ServeClient(handle.address) as cl:
            stats = cl.stats()
    finally:
        handle.stop()
    counters = stats["counters"]
    return {
        "clients": nclients,
        "jobs": total,
        "seconds": round(elapsed, 3),
        "jobs_per_sec": round(total / elapsed, 1),
        "executed": stats["executed"],
        "deduped": counters.get("serve.deduped", 0),
        "lru_hits": counters.get("serve.lru_hits", 0),
        "results": results,
    }


def test_serve_throughput():
    cpu = os.cpu_count() or 1
    workers = 4 if cpu >= 4 else 1
    payload: dict = {
        "host": {"cpu_count": cpu},
        "config": {
            "workers": workers,
            "unique_jobs_dedup": UNIQUE_JOBS,
            "rounds_dedup": ROUNDS,
            "jobs_per_client_nodedup": JOBS_PER_CLIENT,
            "full": FULL,
        },
        "dedup": {},
        "nodedup": {},
    }
    lines = [
        "P9 — tflux-serve sustained throughput (closed-loop clients)",
        f"{'workload':>10} {'clients':>8} {'jobs':>6} {'seconds':>8} "
        f"{'jobs/s':>8} {'sims':>5} {'dedup+lru':>10}",
    ]

    # -- high-dedup: everyone submits the same grid -------------------------
    dedup_grid = [_job(i) for i in range(UNIQUE_JOBS)]

    def same_grid(_c):
        return dedup_grid * ROUNDS

    for nclients in CLIENT_COUNTS:
        m = _measure(nclients, same_grid, workers)
        batches = m.pop("results")
        total = m["jobs"]
        # The single-flight acceptance invariant: unique specs simulate
        # once; every duplicate is a coalesced flight or an LRU hit.
        assert m["executed"] == UNIQUE_JOBS, m
        assert m["deduped"] + m["lru_hits"] == total - UNIQUE_JOBS, m
        # Dedup never changes results: every client saw identical cycles
        # for the same spec.
        by_spec: dict = {}
        for client_batches in batches:
            for r, batch in enumerate(client_batches):
                cycles = by_spec.setdefault(r % UNIQUE_JOBS, batch.outcomes[0].cycles)
                assert batch.outcomes[0].cycles == cycles
        payload["dedup"][str(nclients)] = m
        lines.append(
            f"{'dedup':>10} {nclients:>8} {total:>6} {m['seconds']:>7.2f}s "
            f"{m['jobs_per_sec']:>8,.0f} {m['executed']:>5} "
            f"{m['deduped'] + m['lru_hits']:>10}"
        )

    # -- no-dedup: every job a fresh spec -----------------------------------
    def fresh_stream(c):
        return [
            _job(c * JOBS_PER_CLIENT + j + UNIQUE_JOBS)
            for j in range(JOBS_PER_CLIENT)
        ]

    for nclients in CLIENT_COUNTS:
        m = _measure(nclients, fresh_stream, workers)
        m.pop("results")
        assert m["executed"] == m["jobs"]  # nothing to dedup
        assert m["deduped"] == 0 and m["lru_hits"] == 0
        payload["nodedup"][str(nclients)] = m
        lines.append(
            f"{'no-dedup':>10} {nclients:>8} {m['jobs']:>6} "
            f"{m['seconds']:>7.2f}s {m['jobs_per_sec']:>8,.0f} "
            f"{m['executed']:>5} {0:>10}"
        )

    # -- scaling: 4 clients must beat 1 by >= 2x given >= 4 CPUs ------------
    rate1 = payload["nodedup"]["1"]["jobs_per_sec"]
    rate4 = payload["nodedup"]["4"]["jobs_per_sec"]
    payload["scaling"] = {
        "rate_1_client": rate1,
        "rate_4_clients": rate4,
        "ratio": round(rate4 / rate1, 2),
    }
    if cpu >= 4:
        payload["scaling"]["ok"] = rate4 >= 2 * rate1
        assert rate4 >= 2 * rate1, payload["scaling"]
    else:
        payload["scaling"]["ok"] = None
        payload["scaling_skipped"] = (
            f"host has {cpu} CPU(s); the pool runs simulations serially, "
            f"so client concurrency cannot scale throughput"
        )
        lines.append(f"  (4v1 scaling assertion skipped: {cpu} CPU host)")
    lines.append(f"  4-client vs 1-client: {payload['scaling']['ratio']}x")

    OUT_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    lines.append(f"  wrote {OUT_PATH.name}")
    report("\n".join(lines))


if __name__ == "__main__":
    test_serve_throughput()
    print(OUT_PATH.read_text())
