"""F6 — Figure 6: TFluxSoft (x86 native) speedups.

5 benchmarks × kernels ∈ {2,4,6} × problem sizes on the 8-core Xeon with
the software TSU emulator on a dedicated core.  The paper's observations
(§6.2.2): trends mirror TFluxHard; per-DThread overhead is higher, so
DThreads need to be coarser (unroll > 16); QSORT is non-monotone in size
at low kernel counts (init-core cache hand-off).
"""

import pytest

from benchmarks.conftest import MAX_THREADS, SIZES, UNROLLS_SOFT, report
from repro.analysis import PAPER, render_grid, sweep_figure
from repro.platforms import TFluxSoft

BENCHES = ("trapez", "mmult", "qsort", "susan", "fft")
KERNELS = (2, 4, 6)


@pytest.fixture(scope="module")
def grid():
    return sweep_figure(
        TFluxSoft(),
        benches=BENCHES,
        kernel_counts=KERNELS,
        sizes=SIZES,
        unrolls=UNROLLS_SOFT,
        max_threads=MAX_THREADS,
    )


def test_figure6_table(grid):
    report(render_grid(grid, "Figure 6 — TFluxSoft (x86) native speedup (measured)"))


def test_six_kernel_values_in_band(grid):
    for bench, paper_value in PAPER.fig6_best_6.items():
        got = grid.speedup(bench, 6, "large")
        assert 0.5 * paper_value < got < 1.5 * paper_value, (
            f"{bench}: measured {got:.2f} vs paper {paper_value}"
        )


def test_two_kernel_band(grid):
    # Upper slack 1.2: against the canonical unroll=1 baseline MMULT@2
    # is mildly superlinear (~2.3) from L1 aggregation — see the band's
    # note in repro/analysis/calibration.py.
    lo, hi = PAPER.fig6_two_kernel_band
    for bench in BENCHES:
        got = grid.speedup(bench, 2, "large")
        assert lo * 0.7 <= got <= hi * 1.2, f"{bench}@2: {got:.2f}"


def test_trends_match_tfluxhard(grid):
    """§6.2.2: 'It is easy to observe however, that the trends are the
    same' — the benchmark ordering carries over."""
    s = {b: grid.speedup(b, 6, "large") for b in BENCHES}
    assert s["trapez"] >= s["qsort"]
    assert s["susan"] >= s["qsort"]
    assert s["mmult"] >= s["qsort"] * 0.9


def test_scaling_with_kernels(grid):
    for bench in BENCHES:
        series = [grid.speedup(bench, nk, "large") for nk in KERNELS]
        assert series[-1] > series[0], f"{bench}: no scaling {series}"


# Note: the §6.2.2 unrolling claim ("TFluxSoft needs unroll > 16") is
# exercised by the A2 ablation (bench_ablation_unroll.py) on deliberately
# fine-grained threads.  At this figure's problem sizes a coarse unroll
# can leave fewer DThreads than kernels (FFT: 128 rows / 64 = 2 threads),
# so a figure-level "coarse is never worse" assertion would conflate
# overhead amortisation with parallelism starvation.


def test_average_near_paper(grid):
    avg = grid.average(6, "large")
    # Paper headline: ~4.4x on 6 nodes (average of Soft and Cell).
    assert 3.0 < avg < 5.7, f"average {avg:.2f}"


@pytest.mark.parametrize("bench", BENCHES)
def test_fig6_cell_benchmark(benchmark, bench):
    from repro.apps import get_benchmark, problem_sizes

    platform = TFluxSoft()
    size = problem_sizes(bench, "N")["small"]

    def run():
        return platform.evaluate(
            get_benchmark(bench), size, nkernels=4, unrolls=(4,),
            verify=False, max_threads=256,
        )

    ev = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ev.speedup > 1.0
