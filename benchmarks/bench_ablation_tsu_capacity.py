"""A6 — TSU capacity and DDM Block splitting.

§2: "To allow programs with arbitrarily large synchronization graphs,
without requiring equally large TSU, DDM programs can be split into DDM
Blocks" whose size "is defined by the size of the TSU".  This ablation
sweeps the TSU capacity: a smaller TSU forces more blocks, each paying an
Inlet/Outlet hand-off and an inter-block barrier.  The paper's design
bet — that modest TSU sizes cost little — is checked on a 2048-thread
TRAPEZ.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import get_benchmark, problem_sizes
from repro.exec import JobSpec, run_jobs
from repro.platforms import TFluxHard

CAPACITIES = (64, 256, 1024, None)  # None = unbounded (single block)


def _spec(capacity) -> JobSpec:
    return JobSpec(
        platform=TFluxHard(),
        bench="trapez",
        size=problem_sizes("trapez", "S")["small"],
        nkernels=16,
        unroll=4,
        max_threads=2048,
        verify=True,
        mode="execute",
        tsu_capacity=capacity,
    )


def _block_count(capacity) -> int:
    # Program construction is cheap (no simulation): count blocks locally
    # on a throwaway build rather than shipping the program across the
    # exec boundary.
    bench = get_benchmark("trapez")
    size = problem_sizes("trapez", "S")["small"]
    return len(bench.build(size, unroll=4, max_threads=2048).blocks(capacity))


def run_with_capacity(capacity):
    from repro.exec import run_job

    return run_job(_spec(capacity)).region_cycles, _block_count(capacity)


@pytest.fixture(scope="module")
def sweep():
    outcomes = run_jobs([_spec(cap) for cap in CAPACITIES])
    return {
        cap: (outcome.region_cycles, _block_count(cap))
        for cap, outcome in zip(CAPACITIES, outcomes)
    }


def test_capacity_table(sweep):
    base = sweep[None][0]
    lines = [
        "A6 — TSU capacity vs block-splitting cost (TRAPEZ small, 2049 "
        "instances, 16 kernels)",
        f"{'capacity':>9} {'blocks':>7} {'region cycles':>14} {'overhead':>9}",
    ]
    for cap, (cycles, nblocks) in sweep.items():
        label = "inf" if cap is None else str(cap)
        lines.append(
            f"{label:>9} {nblocks:>7} {cycles:>14,} "
            f"{(cycles - base) / base:>8.2%}"
        )
    report("\n".join(lines))


def test_block_counts_match_capacity(sweep):
    assert sweep[None][1] == 1
    assert sweep[1024][1] == 3  # ceil(2049/1024)
    assert sweep[64][1] == 33


def test_smaller_tsu_never_faster(sweep):
    ordered = [sweep[64][0], sweep[256][0], sweep[1024][0], sweep[None][0]]
    for small, big in zip(ordered, ordered[1:]):
        assert small >= big * 0.999


def test_modest_capacity_costs_little(sweep):
    """A 1024-entry TSU (3 blocks) costs only a few percent over an
    unbounded one — the paper's blocks design works."""
    base = sweep[None][0]
    assert (sweep[1024][0] - base) / base < 0.05


def test_tiny_capacity_cost_is_bounded(sweep):
    """Even a 64-entry TSU (33 blocks) keeps overhead moderate."""
    base = sweep[None][0]
    assert (sweep[64][0] - base) / base < 0.60


def test_ablation_benchmark(benchmark):
    result = benchmark.pedantic(lambda: run_with_capacity(256)[0], rounds=1, iterations=1)
    assert result > 0
