"""A2 — §5/§6.2.2/§6.3 ablation: the unrolling (DThread granularity) study.

"for the TFluxHard the best speedup can be reached even with small unroll
factors (2 or 4) whereas for TFluxSoft the loops needed to be unrolled
more than 16 times" — and the Cell needs more still.

To expose the effect we run TRAPEZ with its *fine* base granularity (64
intervals ≈ 800 cycles per DThread at unroll 1) on the small input with
the thread cap lifted, so the unroll factor genuinely controls DThread
size instead of being masked by the sweep cap.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import problem_sizes
from repro.exec import EvalRequest, evaluate_many
from repro.platforms import TFluxCell, TFluxHard, TFluxSoft

UNROLLS = (1, 2, 4, 8, 16, 32, 64)
MAX_THREADS = 8192


def _request(platform, bench_name: str, nkernels: int) -> EvalRequest:
    return EvalRequest(
        platform=platform,
        bench=bench_name,
        size=problem_sizes(bench_name, platform.target)["small"],
        nkernels=nkernels,
        unrolls=UNROLLS,
        verify=False,
        max_threads=MAX_THREADS,
    )


def efficiency_curve(platform, nkernels: int) -> dict[int, float]:
    """Speedup per unroll factor (TRAPEZ small, fine threads)."""
    return evaluate_many([_request(platform, "trapez", nkernels)])[0].per_unroll


@pytest.fixture(scope="module")
def curves():
    # One repro.exec batch: all three platforms' unroll grids run as
    # independent jobs (21 simulations fan out under TFLUX_JOBS).
    evs = evaluate_many([
        _request(TFluxHard(), "trapez", 8),
        _request(TFluxSoft(), "trapez", 6),
        _request(TFluxCell(), "trapez", 6),
    ])
    return {ev.platform: ev.per_unroll for ev in evs}


def test_unroll_table(curves):
    lines = [
        "A2 — unroll factor vs speedup (TRAPEZ small, fine-grained threads)",
        f"{'platform':<10} " + "".join(f"u={u:<7}" for u in UNROLLS),
    ]
    for name, curve in curves.items():
        lines.append(
            f"{name:<10} " + "".join(f"{curve[u]:<9.2f}" for u in UNROLLS)
        )
    report("\n".join(lines))


def _unroll_reaching(curve: dict[int, float], fraction: float) -> int:
    best = max(curve.values())
    for u in UNROLLS:
        if curve[u] >= fraction * best:
            return u
    return UNROLLS[-1]


def test_hard_saturates_at_small_unroll(curves):
    """TFluxHard reaches ~best speedup by unroll 2-4."""
    u = _unroll_reaching(curves["tfluxhard"], 0.95)
    assert u <= 4, f"hardware TSU needed unroll {u}"


def test_soft_needs_much_coarser_threads(curves):
    """TFluxSoft needs a much larger unroll factor than TFluxHard."""
    u_hard = _unroll_reaching(curves["tfluxhard"], 0.95)
    u_soft = _unroll_reaching(curves["tfluxsoft"], 0.95)
    assert u_soft >= 4 * u_hard, f"soft {u_soft} vs hard {u_hard}"
    assert u_soft >= 16, f"paper: soft needs >16, got {u_soft}"


def test_cell_needs_at_least_soft_granularity(curves):
    u_soft = _unroll_reaching(curves["tfluxsoft"], 0.90)
    u_cell = _unroll_reaching(curves["tfluxcell"], 0.90)
    assert u_cell >= u_soft, f"cell {u_cell} vs soft {u_soft}"


def test_fine_threads_hurt_soft_more_than_hard(curves):
    """At unroll 1 the software TSU loses far more efficiency."""
    hard_loss = curves["tfluxhard"][1] / max(curves["tfluxhard"].values())
    soft_loss = curves["tfluxsoft"][1] / max(curves["tfluxsoft"].values())
    assert soft_loss < hard_loss


def test_ablation_benchmark(benchmark):
    platform = TFluxHard()
    result = benchmark.pedantic(
        lambda: efficiency_curve(platform, nkernels=4)[8],
        rounds=1,
        iterations=1,
    )
    assert result > 1.0


@pytest.fixture(scope="module")
def per_bench_curves():
    """Unroll curves for every benchmark on TFluxSoft (small inputs,
    uncapped fine threads)."""
    from repro.apps import BENCHMARKS

    platform = TFluxSoft()
    names = sorted(BENCHMARKS)
    evs = evaluate_many([_request(platform, name, 6) for name in names])
    return {name: ev.per_unroll for name, ev in zip(names, evs)}


def test_per_benchmark_unroll_table(per_bench_curves):
    lines = [
        "A2b — unroll factor vs speedup per benchmark (TFluxSoft, 6 kernels, small)",
        f"{'benchmark':<9} " + "".join(f"u={u:<7}" for u in UNROLLS),
    ]
    for name, curve in per_bench_curves.items():
        lines.append(
            f"{name:<9} " + "".join(f"{curve[u]:<9.2f}" for u in UNROLLS)
        )
    report("\n".join(lines))


def test_fine_grained_benchmarks_improve_with_unrolling(per_bench_curves):
    """Benchmarks whose unroll-1 DThreads are *fine* (TRAPEZ's 64-interval
    chunks, SUSAN's single rows, FFT's single rows) gain substantially
    from coarsening on the software TSU.  MMULT is exempt — one row of a
    256x256 multiply is already ~300K cycles, so its unroll curve is flat
    (and falls once few threads remain); QSORT trades part-count for
    granularity and prefers fine parts.  That split is itself the paper's
    point: unrolling matters exactly where DThreads are small."""
    for name in ("trapez", "susan", "fft"):
        curve = per_bench_curves[name]
        best = max(curve.values())
        assert best > curve[1] * 1.5, f"{name}: {curve}"
    # And the coarse-bodied benchmark really is flat rather than helped.
    mm = per_bench_curves["mmult"]
    assert max(mm.values()) < mm[1] * 1.15
