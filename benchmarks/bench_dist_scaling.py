"""D1 — TFluxDist scaling: multi-node DDM over the repro.net fabric.

Beyond-paper experiment (the paper stops at one chip; §4.1 only remarks
that very large systems may want multiple TSU Groups).  Nodes ∈ {1,2,4}
of the TFluxSoft kind (6 kernels each) cooperate on one Synchronization
Graph; remote Ready-Count updates and forwarded operand lines travel the
modelled network.  The shape claims pinned here:

* coarse-unrolled workloads keep scaling past one box — speedup grows
  with the node count;
* the ``net.*`` counters expose the traffic: remote updates appear the
  moment there is a second node, FFT forwards real operand data across
  nodes while MMULT (whose inputs are prologue-written, i.e. replicated
  read-only on every node) forwards none;
* the scaling collapses when forwarded-data volume dominates link
  bandwidth — FFT on a starved link loses most of its 4-node speedup.
"""

import pytest

from benchmarks.conftest import FULL, MAX_THREADS, UNROLLS_SOFT, report
from repro.apps import get_benchmark, problem_sizes
from repro.exec import EvalRequest, evaluate_many
from repro.net import NetParams
from repro.platforms import TFluxDist

BENCHES = ("trapez", "mmult", "fft")
NODES = (1, 2, 4)
SIZE = "large" if FULL else "small"
#: FFT's small grid (128 rows) starves 24 kernels at coarse unrolls —
#: the multi-node claims need the large grid's parallelism either way.
BENCH_SIZES = {"trapez": SIZE, "mmult": SIZE, "fft": "large"}
KERNELS_PER_NODE = 6

#: A link two orders of magnitude slower than the default 16 B/cycle,
#: with matching latency: forwarded lines now cost more than they save.
STARVED = NetParams(link_latency_cycles=4000, bytes_per_cycle=0.05)


def _requests():
    reqs, keys = [], []
    for bench in BENCHES:
        size = problem_sizes(bench, "N")[BENCH_SIZES[bench]]
        for nodes in NODES:
            reqs.append(
                EvalRequest(
                    platform=TFluxDist(nnodes=nodes),
                    bench=bench,
                    size=size,
                    nkernels=KERNELS_PER_NODE * nodes,
                    unrolls=UNROLLS_SOFT,
                    max_threads=MAX_THREADS,
                )
            )
            keys.append((bench, nodes))
    # The bandwidth-collapse cell: FFT on the starved link, 4 nodes.
    reqs.append(
        EvalRequest(
            platform=TFluxDist(nnodes=4, net=STARVED),
            bench="fft",
            size=problem_sizes("fft", "N")[BENCH_SIZES["fft"]],
            nkernels=KERNELS_PER_NODE * 4,
            unrolls=UNROLLS_SOFT,
            max_threads=MAX_THREADS,
        )
    )
    keys.append(("fft-starved", 4))
    return reqs, keys


@pytest.fixture(scope="module")
def grid():
    reqs, keys = _requests()
    return dict(zip(keys, evaluate_many(reqs)))


def test_dist_scaling_table(grid):
    lines = ["TFluxDist scaling (6 kernels/node; best unroll)"]
    lines.append(f"{'bench':>12s} " + " ".join(f"{n:>2d} node" for n in NODES))
    for bench in BENCHES:
        row = " ".join(f"{grid[(bench, n)].speedup:7.2f}" for n in NODES)
        lines.append(f"{bench:>12s} {row}")
    ev = grid[("fft-starved", 4)]
    lines.append(
        f"{'fft@starved':>12s} {ev.speedup:7.2f}  "
        f"(link {STARVED.bytes_per_cycle} B/cycle, "
        f"{ev.result.counters['net.bytes_forwarded']:,d} B forwarded)"
    )
    report("\n".join(lines))


@pytest.mark.parametrize("bench", BENCHES)
def test_speedup_grows_with_nodes(grid, bench):
    series = [grid[(bench, n)].speedup for n in NODES]
    assert series[1] > series[0] * 1.15, f"{bench}: 2 nodes buy nothing {series}"
    assert series[2] > series[1] * 1.15, f"{bench}: 4 nodes buy nothing {series}"


@pytest.mark.parametrize("bench", ("trapez", "fft"))
def test_remote_updates_appear_with_second_node(grid, bench):
    """Both benches with inter-thread arcs (chunk→reduce, rows→cols→…)
    start paying remote Ready-Count updates the moment a second node
    owns part of the graph.  One node never touches the network."""
    one = grid[(bench, 1)].result.counters
    assert one.get("net.remote_updates", 0) == 0
    assert one.get("net.messages", 0) == 0
    for n in (2, 4):
        c = grid[(bench, n)].result.counters
        assert c["net.remote_updates"] > 0, f"{bench}@{n}"
        assert c["net.msg.ready_update"] > 0, f"{bench}@{n}"


def test_mmult_is_control_plane_only(grid):
    """MMULT's compute threads are fully independent (the paper's §6.1.2
    sequential-prologue discussion): multi-node runs broadcast block
    inlets and the termination barrier but never a Ready-Count update."""
    c = grid[("mmult", 2)].result.counters
    assert c["net.msg.inlet_bcast"] >= 1
    assert c["net.msg.terminate"] == 1
    assert c["net.remote_updates"] == 0


def test_fft_forwards_data_and_mmult_does_not(grid):
    """FFT's row threads read rows written by the previous stage on other
    nodes; MMULT's inputs are prologue-written (owner-less, replicated
    everywhere), so only FFT pays the data plane."""
    for n in (2, 4):
        assert grid[("fft", n)].result.counters["net.bytes_forwarded"] > 0
        assert grid[("mmult", n)].result.counters["net.bytes_forwarded"] == 0


def test_forwarded_volume_grows_with_nodes(grid):
    """More nodes ⇒ more cross-node producer/consumer pairs for FFT."""
    c2 = grid[("fft", 2)].result.counters["net.bytes_forwarded"]
    c4 = grid[("fft", 4)].result.counters["net.bytes_forwarded"]
    assert c4 > c2


def test_starved_link_collapses_fft_scaling(grid):
    """When forwarded bytes dominate link bandwidth, the 4-node speedup
    collapses: the starved run loses most of the scaling and lands at or
    below the 2-node healthy run."""
    healthy = grid[("fft", 4)]
    starved = grid[("fft-starved", 4)]
    assert starved.result.counters["net.bytes_forwarded"] > 0
    assert starved.speedup < 0.6 * healthy.speedup
    assert starved.speedup < grid[("fft", 2)].speedup
