"""D1 — TFluxDist scaling: multi-node DDM over the repro.net fabric.

Beyond-paper experiment (the paper stops at one chip; §4.1 only remarks
that very large systems may want multiple TSU Groups).  Nodes ∈ {1,2,4}
of the TFluxSoft kind (6 kernels each) cooperate on one Synchronization
Graph; remote Ready-Count updates and forwarded operand lines travel the
modelled network.  The shape claims pinned here:

* coarse-unrolled workloads keep scaling past one box — speedup grows
  with the node count;
* the ``net.*`` counters expose the traffic: remote updates appear the
  moment there is a second node, FFT forwards real operand data across
  nodes while MMULT (whose inputs are prologue-written, i.e. replicated
  read-only on every node) forwards none;
* the scaling collapses when forwarded-data volume dominates link
  bandwidth — FFT on a starved link loses most of its 4-node speedup.

PR 6 widens the sweep past the old 63-core/7-node wall: a second grid
runs trapez on 1→64 nodes of a clustered fat-tree (hierarchical TSU,
one cluster head per pod) and pins that speedup **keeps growing beyond
8 nodes** — the wall was the flat sharer bitmask, not the workload —
while the same sweep on a thin oversubscribed spine saturates: once the
pods' shared uplinks carry the cross-pod traffic, ``net.link_queue_cycles``
explodes and the curve flattens, the modelled bisection-bandwidth limit.
"""

import pytest

from benchmarks.conftest import FULL, MAX_THREADS, UNROLLS_SOFT, report
from repro.apps import get_benchmark, problem_sizes
from repro.exec import EvalRequest, evaluate_many
from repro.net import FatTree, NetParams, OversubscribedSpine
from repro.platforms import TFluxDist

BENCHES = ("trapez", "mmult", "fft")
NODES = (1, 2, 4)
SIZE = "large" if FULL else "small"
#: FFT's small grid (128 rows) starves 24 kernels at coarse unrolls —
#: the multi-node claims need the large grid's parallelism either way.
BENCH_SIZES = {"trapez": SIZE, "mmult": SIZE, "fft": "large"}
KERNELS_PER_NODE = 6

#: A link two orders of magnitude slower than the default 16 B/cycle,
#: with matching latency: forwarded lines now cost more than they save.
STARVED = NetParams(link_latency_cycles=4000, bytes_per_cycle=0.05)

# -- the wide (cluster-scale) sweep -------------------------------------------
#: 1→64 nodes: one pod of 8 per fat-tree tier, one TSU cluster per pod.
NODES_WIDE = (1, 2, 4, 8, 16, 32, 64)
POD = 8
#: The saturation rungs only matter where pods share uplinks.
NODES_SAT = (8, 16, 32, 64)
#: A spine thin enough that the shared uplinks become the bottleneck at
#: this load (32 B/message control traffic, ~8 KB forwarded): 0.5 B/cycle
#: and a 2000-cycle hop make cross-pod messages queue for millions of
#: cycles by 16 nodes.
THIN = NetParams(link_latency_cycles=2000, bytes_per_cycle=0.5)
#: trapez stays on the *small* grid even under TFLUX_BENCH_FULL: the wide
#: sweep isolates node-count scaling (384 kernels at 64 nodes need only
#: enough threads to feed them — small/unroll 8 is 1024), and the large
#: grid's 16384 threads would blow the unroll past ``max_threads``.
WIDE_SIZE = "small"
WIDE_UNROLLS = (8,)


def _wide_platform(nodes, topology, net=None):
    kw = {} if net is None else {"net": net}
    return TFluxDist(nnodes=nodes, topology=topology, cluster_size=POD, **kw)


def _wide_requests():
    size = problem_sizes("trapez", "N")[WIDE_SIZE]
    reqs, keys = [], []
    for nodes in NODES_WIDE:
        reqs.append(
            EvalRequest(
                platform=_wide_platform(nodes, FatTree(pod_size=POD)),
                bench="trapez",
                size=size,
                nkernels=KERNELS_PER_NODE * nodes,
                unrolls=WIDE_UNROLLS,
                max_threads=4096,
            )
        )
        keys.append(("fattree", nodes))
    for nodes in NODES_SAT:
        reqs.append(
            EvalRequest(
                platform=_wide_platform(
                    nodes,
                    OversubscribedSpine(pod_size=POD, oversubscription=POD),
                    net=THIN,
                ),
                bench="trapez",
                size=size,
                nkernels=KERNELS_PER_NODE * nodes,
                unrolls=WIDE_UNROLLS,
                max_threads=4096,
            )
        )
        keys.append(("thin-spine", nodes))
    return reqs, keys


def _requests():
    reqs, keys = [], []
    for bench in BENCHES:
        size = problem_sizes(bench, "N")[BENCH_SIZES[bench]]
        for nodes in NODES:
            reqs.append(
                EvalRequest(
                    platform=TFluxDist(nnodes=nodes),
                    bench=bench,
                    size=size,
                    nkernels=KERNELS_PER_NODE * nodes,
                    unrolls=UNROLLS_SOFT,
                    max_threads=MAX_THREADS,
                )
            )
            keys.append((bench, nodes))
    # The bandwidth-collapse cell: FFT on the starved link, 4 nodes.
    reqs.append(
        EvalRequest(
            platform=TFluxDist(nnodes=4, net=STARVED),
            bench="fft",
            size=problem_sizes("fft", "N")[BENCH_SIZES["fft"]],
            nkernels=KERNELS_PER_NODE * 4,
            unrolls=UNROLLS_SOFT,
            max_threads=MAX_THREADS,
        )
    )
    keys.append(("fft-starved", 4))
    return reqs, keys


@pytest.fixture(scope="module")
def grid():
    reqs, keys = _requests()
    return dict(zip(keys, evaluate_many(reqs)))


def test_dist_scaling_table(grid):
    lines = ["TFluxDist scaling (6 kernels/node; best unroll)"]
    lines.append(f"{'bench':>12s} " + " ".join(f"{n:>2d} node" for n in NODES))
    for bench in BENCHES:
        row = " ".join(f"{grid[(bench, n)].speedup:7.2f}" for n in NODES)
        lines.append(f"{bench:>12s} {row}")
    ev = grid[("fft-starved", 4)]
    lines.append(
        f"{'fft@starved':>12s} {ev.speedup:7.2f}  "
        f"(link {STARVED.bytes_per_cycle} B/cycle, "
        f"{ev.result.counters['net.bytes_forwarded']:,d} B forwarded)"
    )
    report("\n".join(lines))


@pytest.mark.parametrize("bench", BENCHES)
def test_speedup_grows_with_nodes(grid, bench):
    series = [grid[(bench, n)].speedup for n in NODES]
    assert series[1] > series[0] * 1.15, f"{bench}: 2 nodes buy nothing {series}"
    assert series[2] > series[1] * 1.15, f"{bench}: 4 nodes buy nothing {series}"


@pytest.mark.parametrize("bench", ("trapez", "fft"))
def test_remote_updates_appear_with_second_node(grid, bench):
    """Both benches with inter-thread arcs (chunk→reduce, rows→cols→…)
    start paying remote Ready-Count updates the moment a second node
    owns part of the graph.  One node never touches the network."""
    one = grid[(bench, 1)].result.counters
    assert one.get("net.remote_updates", 0) == 0
    assert one.get("net.messages", 0) == 0
    for n in (2, 4):
        c = grid[(bench, n)].result.counters
        assert c["net.remote_updates"] > 0, f"{bench}@{n}"
        assert c["net.msg.ready_update"] > 0, f"{bench}@{n}"


def test_mmult_is_control_plane_only(grid):
    """MMULT's compute threads are fully independent (the paper's §6.1.2
    sequential-prologue discussion): multi-node runs broadcast block
    inlets and the termination barrier but never a Ready-Count update."""
    c = grid[("mmult", 2)].result.counters
    assert c["net.msg.inlet_bcast"] >= 1
    assert c["net.msg.terminate"] == 1
    assert c["net.remote_updates"] == 0


def test_fft_forwards_data_and_mmult_does_not(grid):
    """FFT's row threads read rows written by the previous stage on other
    nodes; MMULT's inputs are prologue-written (owner-less, replicated
    everywhere), so only FFT pays the data plane."""
    for n in (2, 4):
        assert grid[("fft", n)].result.counters["net.bytes_forwarded"] > 0
        assert grid[("mmult", n)].result.counters["net.bytes_forwarded"] == 0


def test_forwarded_volume_grows_with_nodes(grid):
    """More nodes ⇒ more cross-node producer/consumer pairs for FFT."""
    c2 = grid[("fft", 2)].result.counters["net.bytes_forwarded"]
    c4 = grid[("fft", 4)].result.counters["net.bytes_forwarded"]
    assert c4 > c2


def test_starved_link_collapses_fft_scaling(grid):
    """When forwarded bytes dominate link bandwidth, the 4-node speedup
    collapses: the starved run loses most of the scaling and lands at or
    below the 2-node healthy run."""
    healthy = grid[("fft", 4)]
    starved = grid[("fft-starved", 4)]
    assert starved.result.counters["net.bytes_forwarded"] > 0
    assert starved.speedup < 0.6 * healthy.speedup
    assert starved.speedup < grid[("fft", 2)].speedup


# -- the wide sweep: past the 7-node wall to bisection saturation -------------
@pytest.fixture(scope="module")
def wide():
    reqs, keys = _wide_requests()
    return dict(zip(keys, evaluate_many(reqs)))


def test_wide_scaling_table(wide):
    lines = [
        "TFluxDist cluster-scale sweep "
        f"(trapez/{WIDE_SIZE}, unroll {WIDE_UNROLLS[0]}, pod/cluster {POD})"
    ]
    lines.append(f"{'topology':>12s} " + " ".join(f"{n:>7d}" for n in NODES_WIDE))
    row = " ".join(f"{wide[('fattree', n)].speedup:7.2f}" for n in NODES_WIDE)
    lines.append(f"{'fattree':>12s} {row}")
    pad = " " * 8 * (len(NODES_WIDE) - len(NODES_SAT))
    row = " ".join(f"{wide[('thin-spine', n)].speedup:7.2f}" for n in NODES_SAT)
    lines.append(f"{'thin-spine':>12s} {pad}{row}")
    q = wide[("thin-spine", NODES_SAT[-1])].result.counters["net.link_queue_cycles"]
    lines.append(f"(thin spine at 64 nodes queued {q:,d} cycles on shared uplinks)")
    report("\n".join(lines))


def test_speedup_grows_past_the_old_wall(wide):
    """The old 7-node ceiling was the flat 63-core sharer bitmask, not a
    property of the workload: on the two-level directory the fat-tree
    sweep keeps buying speedup at 16, 32 and 64 nodes (measured ~24 →
    ~30 → ~35 → ~37; margins pinned well below that)."""
    s = {n: wide[("fattree", n)].speedup for n in NODES_WIDE}
    for lo, hi in zip(NODES_WIDE, NODES_WIDE[1:]):
        assert s[hi] > s[lo], f"{hi} nodes regressed: {s}"
    assert s[16] > 1.15 * s[8], s
    assert s[32] > 1.08 * s[16], s
    assert s[64] > 1.02 * s[32], s


def test_hier_tsu_relays_beyond_one_cluster(wide):
    """Up to one pod (8 nodes) the cluster head has nobody to relay for;
    past it, cross-cluster Ready-Count traffic goes via the heads."""
    for n in NODES_WIDE:
        relayed = wide[("fattree", n)].result.counters.get("net.relayed_messages", 0)
        if n <= POD:
            assert relayed == 0, f"{n} nodes: unexpected relays"
        else:
            assert relayed > 0, f"{n} nodes: hierarchy never engaged"


def test_thin_spine_saturates_bisection_bandwidth(wide):
    """On the oversubscribed spine the shared uplinks are the bisection:
    queueing grows superlinearly with the node count and the speedup
    curve flattens then sags (measured ~11 → ~7 → ~6.6 → ~5.8), while
    the full fat-tree at 64 nodes stays several times faster."""
    s = {n: wide[("thin-spine", n)].speedup for n in NODES_SAT}
    q = {
        n: wide[("thin-spine", n)].result.counters["net.link_queue_cycles"]
        for n in NODES_SAT
    }
    assert s[16] < s[8], s  # saturation bites before 16 nodes
    assert s[64] < 1.05 * s[32], s  # ... and the curve has flattened
    for lo, hi in zip(NODES_SAT, NODES_SAT[1:]):
        assert q[hi] > q[lo], q
    assert q[16] > 4 * q[8], q
    assert wide[("fattree", 64)].speedup > 3 * s[64]


def test_dist_scaling_smoke_16_nodes():
    """CI smoke: one 16-node clustered fat-tree cell, no grid fixture.

    Selected by name in the workflow's ``dist-scaling-smoke`` step; keeps
    the cluster-scale path (hier TSU + topology pricing + wide directory)
    exercised in seconds."""
    ev = evaluate_many(
        [
            EvalRequest(
                platform=_wide_platform(16, FatTree(pod_size=POD)),
                bench="trapez",
                size=problem_sizes("trapez", "N")[WIDE_SIZE],
                nkernels=KERNELS_PER_NODE * 16,
                unrolls=WIDE_UNROLLS,
                max_threads=4096,
            )
        ]
    )[0]
    assert ev.speedup > 20  # measured ~30 on 16 nodes
    c = ev.result.counters
    assert c["net.relayed_messages"] > 0
    assert c["net.hops"] > 0
    assert ev.result.topology == f"fattree(pod={POD},up={POD})"
