"""F5 — Figure 5: TFluxHard speedups.

5 benchmarks × kernels ∈ {2,4,8,16,27} × problem sizes on the Bagle CMP
with the hardware TSU.  Shape assertions follow the paper's §6.1.2
discussion: near-ideal scaling for TRAPEZ/SUSAN, MMULT slightly below
ideal (coherence misses), FFT below that (phase barriers), QSORT lowest
(serial merge tail), and speedup growing with problem size.
"""

import pytest

from benchmarks.conftest import MAX_THREADS, SIZES, UNROLLS_HARD, report
from repro.analysis import PAPER, render_grid, sweep_figure
from repro.platforms import TFluxHard

BENCHES = ("trapez", "mmult", "qsort", "susan", "fft")
KERNELS = (2, 4, 8, 16, 27)


@pytest.fixture(scope="module")
def grid():
    return sweep_figure(
        TFluxHard(),
        benches=BENCHES,
        kernel_counts=KERNELS,
        sizes=SIZES,
        unrolls=UNROLLS_HARD,
        max_threads=MAX_THREADS,
    )


def test_figure5_table(grid):
    report(render_grid(grid, "Figure 5 — TFluxHard speedup (measured)"))


def test_headline_average_near_21x(grid):
    avg = grid.average(27, "large")
    # Paper: "average speedup of 21x for the 27 nodes TFluxHard".
    assert 15.0 < avg < 27.0, f"average {avg:.1f} far from the paper's 21x"


def test_benchmark_ordering_matches_paper(grid):
    s = {b: grid.speedup(b, 27, "large") for b in BENCHES}
    # TRAPEZ/SUSAN near-ideal and above MMULT; FFT and QSORT trail.
    assert s["trapez"] > s["fft"] > s["qsort"]
    assert s["susan"] > s["fft"]
    assert s["mmult"] > s["qsort"]


def test_near_linear_scaling_for_scalable_codes(grid):
    for bench in ("trapez", "susan"):
        for nk in KERNELS:
            speedup = grid.speedup(bench, nk, "large")
            assert speedup > 0.75 * nk, (
                f"{bench} at {nk} kernels: {speedup:.2f} not near-linear"
            )


def test_speedup_grows_with_kernel_count(grid):
    for bench in BENCHES:
        series = [grid.speedup(bench, nk, "large") for nk in KERNELS]
        for a, b in zip(series, series[1:]):
            assert b > a * 0.95, f"{bench}: non-monotone series {series}"


def test_speedup_grows_with_problem_size(grid):
    """§6.1.2: 'for all cases the speedup increases for larger problem
    sizes' — parallelization overhead amortises."""
    for bench in BENCHES:
        small = grid.speedup(bench, 27, "small")
        large = grid.speedup(bench, 27, "large")
        assert large >= small * 0.95, (
            f"{bench}: large ({large:.2f}) not above small ({small:.2f})"
        )


def test_anchor_values_within_band(grid):
    """Each printed Figure-5 bar is reproduced within a 2x band (we match
    shape, not the authors' testbed)."""
    for bench, paper_value in PAPER.fig5_large_27.items():
        got = grid.speedup(bench, 27, "large")
        assert 0.5 * paper_value < got < 2.0 * paper_value, (
            f"{bench}: measured {got:.1f} vs paper {paper_value}"
        )


def test_mmult_coherence_misses_present(grid):
    """§6.1.2: MMULT 'suffers from a large number of coherency misses'."""
    ev = grid.get("mmult", 27, "large")
    mem = ev.result.memory
    assert mem.coherence_misses > 1000


@pytest.mark.parametrize("bench", BENCHES)
def test_fig5_cell_benchmark(benchmark, bench, grid):
    """pytest-benchmark hook: time one evaluation cell per benchmark."""
    from repro.apps import get_benchmark, problem_sizes

    platform = TFluxHard()
    size = problem_sizes(bench, "S")["small"]

    def run():
        return platform.evaluate(
            get_benchmark(bench), size, nkernels=8, unrolls=(8,),
            verify=False, max_threads=256,
        )

    ev = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ev.speedup > 1.0
