"""§6.1.2 cross-ISA validation: the 9-core x86 system "similar to Bagle".

"The same benchmarks have been executed on a simulated 9 cores X86 system
similar to Bagle.  The speedup values observed and conclusions drawn are
similar to those reported in this Section."  (The paper could not print
the numbers "due to lack of space" — we can.)
"""

import pytest

from benchmarks.conftest import report
from repro.apps import get_benchmark, problem_sizes
from repro.exec import EvalRequest, evaluate_many
from repro.platforms import TFluxHard
from repro.sim.machine import X86_9_SIM

BENCHES = ("trapez", "mmult", "qsort", "susan", "fft")
KERNELS = 8  # 9 cores - 1 OS core


def _requests(platform) -> list[EvalRequest]:
    return [
        EvalRequest(
            platform=platform,
            bench=name,
            size=problem_sizes(name, "S")["large"],
            nkernels=KERNELS,
            unrolls=(4, 16),
            verify=False,
            max_threads=1024,
        )
        for name in BENCHES
    ]


def speedups(platform) -> dict[str, float]:
    evs = evaluate_many(_requests(platform))
    return {name: ev.speedup for name, ev in zip(BENCHES, evs)}


@pytest.fixture(scope="module")
def results():
    # Both machines' five-benchmark grids as one 20-job exec batch.
    evs = evaluate_many(_requests(TFluxHard()) + _requests(TFluxHard(machine=X86_9_SIM)))
    return {
        "bagle": {name: ev.speedup for name, ev in zip(BENCHES, evs[: len(BENCHES)])},
        "x86_9": {name: ev.speedup for name, ev in zip(BENCHES, evs[len(BENCHES):])},
    }


def test_x86_table(results):
    lines = [
        "§6.1.2 — 8-kernel speedups: Bagle (Sparc) vs the 9-core x86 system",
        f"{'benchmark':<9} {'bagle':>8} {'x86_9':>8} {'ratio':>7}",
    ]
    for bench in BENCHES:
        b, x = results["bagle"][bench], results["x86_9"][bench]
        lines.append(f"{bench.upper():<9} {b:>8.2f} {x:>8.2f} {x / b:>7.2f}")
    report("\n".join(lines))


def test_speedups_similar_across_isas(results):
    """The paper's claim: 'speedup values observed and conclusions drawn
    are similar'."""
    for bench in BENCHES:
        b, x = results["bagle"][bench], results["x86_9"][bench]
        assert 0.8 < x / b < 1.25, f"{bench}: bagle {b:.2f} vs x86 {x:.2f}"


def test_conclusions_carry_over(results):
    """Same per-benchmark ordering on both machines (pairs within 5% of
    each other count as tied — near-linear codes jitter)."""
    b, x = results["bagle"], results["x86_9"]
    for lo in BENCHES:
        for hi in BENCHES:
            if b[hi] > b[lo] * 1.05:  # clearly ordered on Bagle...
                assert x[hi] > x[lo] * 0.98, (
                    f"{hi} > {lo} on bagle but not on x86_9"
                )


def test_x86_benchmark(benchmark):
    platform = TFluxHard(machine=X86_9_SIM)
    bench = get_benchmark("trapez")
    size = problem_sizes("trapez", "S")["small"]

    def run():
        return platform.evaluate(
            bench, size, nkernels=8, unrolls=(16,), verify=False, max_threads=256
        ).speedup

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result > 4.0
