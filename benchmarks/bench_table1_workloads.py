"""T1 — Table 1: workload description and problem sizes.

Regenerates the table and benchmarks the workload generators themselves
(building each DDM program, which is what Table 1 parameterises).
"""

import pytest

from benchmarks.conftest import report
from repro.apps import BENCHMARKS, get_benchmark, problem_sizes
from repro.analysis.tables import render_table1


def test_render_table1_matches_paper_grid():
    table = render_table1()
    report(table)
    # Spot-check the values Table 1 prints.
    assert "2^19" in table and "2^23" in table
    assert "64x64" in table and "1024x1024" in table
    assert "10K" in table and "12K" in table
    assert "256x288" in table and "1024x576" in table
    assert "32x32" in table and "128x128" in table


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_workload_generation_benchmark(benchmark, name):
    """pytest-benchmark: time building each workload's DDM program."""
    bench = get_benchmark(name)
    size = problem_sizes(name, "S")["small"]

    def build():
        return bench.build(size, unroll=8, max_threads=512)

    program = benchmark(build)
    assert program.ninstances >= 1
