"""A7 — dispatch policy extension: SM-local vs stealing.

§3.1 says the TSU "replies with the identifier of one of the ready
DThreads", preferring spatial locality.  The baseline implementation is
strictly SM-local (a kernel only receives DThreads placed in its own
Synchronization Memory); this ablation measures the locality-relaxed
variant in which an idle kernel may be handed another SM's ready DThread.

Expected shape: near-zero effect on the balanced Figure-5 workloads
(static contiguous placement already balances them), real gains on
skew — QSORT's merge tail is the paper workload where idle kernels exist
while work is pending.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import get_benchmark, problem_sizes
from repro.runtime.simdriver import SimulatedRuntime
from repro.sim.machine import BAGLE_27
from repro.tsu.hardware import HardwareTSUAdapter

BENCHES = ("trapez", "mmult", "qsort", "susan", "fft")


def run(bench_name: str, allow_stealing: bool, nkernels=27, unroll=4):
    bench = get_benchmark(bench_name)
    size = problem_sizes(bench_name, "S")["large"]
    prog = bench.build(size, unroll=unroll, max_threads=1024)
    rt = SimulatedRuntime(
        prog,
        BAGLE_27,
        nkernels=nkernels,
        adapter_factory=lambda e, t: HardwareTSUAdapter(e, t),
        allow_stealing=allow_stealing,
    )
    res = rt.run()
    bench.verify(res.env, size)
    return res.region_cycles, rt.tsu.steals


@pytest.fixture(scope="module")
def sweep():
    return {
        bench: {steal: run(bench, steal) for steal in (False, True)}
        for bench in BENCHES
    }


def test_stealing_table(sweep):
    lines = [
        "A7 — SM-local vs stealing dispatch (TFluxHard, 27 kernels, large)",
        f"{'benchmark':<9} {'local cycles':>13} {'steal cycles':>13} "
        f"{'gain':>6} {'steals':>7}",
    ]
    for bench, row in sweep.items():
        local, _ = row[False]
        steal, nsteals = row[True]
        lines.append(
            f"{bench.upper():<9} {local:>13,} {steal:>13,} "
            f"{local / steal:>5.2f}x {nsteals:>7}"
        )
    report("\n".join(lines))


def test_stealing_never_hurts_materially(sweep):
    for bench, row in sweep.items():
        local, _ = row[False]
        steal, _ = row[True]
        assert steal <= local * 1.03, f"{bench}: stealing regressed"


def test_balanced_codes_unaffected(sweep):
    """TRAPEZ/SUSAN are already balanced: stealing is ~neutral."""
    for bench in ("trapez", "susan"):
        local, _ = sweep[bench][False]
        steal, _ = sweep[bench][True]
        assert steal == pytest.approx(local, rel=0.05)


def test_steals_happen_where_imbalance_exists(sweep):
    total_steals = sum(row[True][1] for row in sweep.values())
    assert total_steals > 0


def test_ablation_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: run("qsort", True, nkernels=8)[0], rounds=1, iterations=1
    )
    assert result > 0
