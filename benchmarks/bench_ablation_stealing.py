"""A7 — dispatch policy extension: SM-local vs stealing.

§3.1 says the TSU "replies with the identifier of one of the ready
DThreads", preferring spatial locality.  The baseline implementation is
strictly SM-local (a kernel only receives DThreads placed in its own
Synchronization Memory); this ablation measures the locality-relaxed
variant in which an idle kernel may be handed another SM's ready DThread.

Expected shape: near-zero effect on the balanced Figure-5 workloads
(static contiguous placement already balances them), real gains on
skew — QSORT's merge tail is the paper workload where idle kernels exist
while work is pending.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import problem_sizes
from repro.exec import JobSpec, run_job, run_jobs
from repro.platforms import TFluxHard

BENCHES = ("trapez", "mmult", "qsort", "susan", "fft")


def _spec(bench_name: str, allow_stealing: bool, nkernels=27, unroll=4) -> JobSpec:
    return JobSpec(
        platform=TFluxHard(),
        bench=bench_name,
        size=problem_sizes(bench_name, "S")["large"],
        nkernels=nkernels,
        unroll=unroll,
        max_threads=1024,
        verify=True,
        mode="execute",
        allow_stealing=allow_stealing,
    )


def run(bench_name: str, allow_stealing: bool, nkernels=27, unroll=4):
    outcome = run_job(_spec(bench_name, allow_stealing, nkernels, unroll))
    return outcome.region_cycles, outcome.result.counters["tsu.steals"]


@pytest.fixture(scope="module")
def sweep():
    # 10 (benchmark, policy) simulations as one exec batch.
    specs = [
        _spec(bench, steal) for bench in BENCHES for steal in (False, True)
    ]
    outcomes = iter(run_jobs(specs))
    return {
        bench: {
            steal: (out.region_cycles, out.result.counters["tsu.steals"])
            for steal in (False, True)
            for out in (next(outcomes),)
        }
        for bench in BENCHES
    }


def test_stealing_table(sweep):
    lines = [
        "A7 — SM-local vs stealing dispatch (TFluxHard, 27 kernels, large)",
        f"{'benchmark':<9} {'local cycles':>13} {'steal cycles':>13} "
        f"{'gain':>6} {'steals':>7}",
    ]
    for bench, row in sweep.items():
        local, _ = row[False]
        steal, nsteals = row[True]
        lines.append(
            f"{bench.upper():<9} {local:>13,} {steal:>13,} "
            f"{local / steal:>5.2f}x {nsteals:>7}"
        )
    report("\n".join(lines))


def test_stealing_never_hurts_materially(sweep):
    for bench, row in sweep.items():
        local, _ = row[False]
        steal, _ = row[True]
        assert steal <= local * 1.03, f"{bench}: stealing regressed"


def test_balanced_codes_unaffected(sweep):
    """TRAPEZ/SUSAN are already balanced: stealing is ~neutral."""
    for bench in ("trapez", "susan"):
        local, _ = sweep[bench][False]
        steal, _ = sweep[bench][True]
        assert steal == pytest.approx(local, rel=0.05)


def test_steals_happen_where_imbalance_exists(sweep):
    total_steals = sum(row[True][1] for row in sweep.values())
    assert total_steals > 0


def test_ablation_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: run("qsort", True, nkernels=8)[0], rounds=1, iterations=1
    )
    assert result > 0
