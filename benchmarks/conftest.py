"""Shared configuration for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Two knobs keep runtimes sane:

* ``TFLUX_BENCH_FULL=1`` runs the paper's complete grids (all sizes, the
  full unroll sweep).  The default is a reduced grid that still covers
  every benchmark/kernel-count series but trims the unroll sweep, so the
  whole harness finishes in minutes.
* Results print through ``report()`` so ``pytest benchmarks/
  --benchmark-only -s`` shows the paper-style tables.

Every grid fans out through :mod:`repro.exec`, so two more environment
knobs apply to the whole harness (see docs/simulation.md, "Running the
harness fast"):

* ``TFLUX_JOBS=N`` (or ``auto``) runs the independent grid cells in N
  worker processes; results are bit-identical to the serial run.
* ``TFLUX_CACHE_DIR=path`` memoises each simulation on disk, keyed by
  the full job spec + cost-model parameters + a fingerprint of the
  ``repro`` sources — re-running an unchanged harness is near-instant.
"""

from __future__ import annotations

import os

import pytest

FULL = bool(int(os.environ.get("TFLUX_BENCH_FULL", "0")))

#: Unroll grids (the paper sweeps 1..64; the reduced grid keeps the
#: decision points that matter per platform).
UNROLLS_FULL = (1, 2, 4, 8, 16, 32, 64)
UNROLLS_HARD = UNROLLS_FULL if FULL else (2, 8)
UNROLLS_SOFT = UNROLLS_FULL if FULL else (8, 32, 64)
UNROLLS_CELL = UNROLLS_FULL if FULL else (16, 64)

SIZES = ("small", "medium", "large") if FULL else ("small", "large")

#: Thread-count cap for the simulated sweeps (full = the paper-scale cap).
MAX_THREADS = 4096 if FULL else 1024


def report(text: str) -> None:
    """Print a paper-style table (visible with -s; always in captured logs)."""
    print("\n" + text)


@pytest.fixture(scope="session")
def bench_mode() -> str:
    return "full" if FULL else "reduced"
