"""Wall-clock benchmarks of the native (real-threads) runtime.

These are the only *real-time* measurements in the harness (everything
else reports simulated cycles): pytest-benchmark times actual DDM
executions on host OS threads, exercising the true TUB locks, the
emulator thread, and the GIL.  Used to track runtime-protocol overhead
regressions rather than to reproduce paper numbers.
"""

import pytest

from repro.apps import get_benchmark, problem_sizes
from repro.core import ProgramBuilder
from repro.runtime.native import NativeRuntime


def overhead_program(nthreads=200):
    """Minimal-body threads: measures pure runtime-protocol overhead."""
    b = ProgramBuilder("overhead")
    b.env.alloc("parts", nthreads)
    t1 = b.thread(
        "w",
        body=lambda env, i: env.array("parts").__setitem__(i, i),
        contexts=nthreads,
    )
    t2 = b.thread("r", body=lambda env, _: env.set("done", True))
    b.depends(t1, t2, "all")
    return b.build()


@pytest.mark.parametrize("nkernels", [1, 2, 4])
def test_native_protocol_overhead(benchmark, nkernels):
    """Time per DThread dispatch through fetch/TUB/emulator, by kernels."""

    def run():
        res = NativeRuntime(overhead_program(), nkernels=nkernels).run()
        assert res.env.get("done")
        return res

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.total_dthreads == 201


def test_native_mmult_wallclock(benchmark):
    """End-to-end MMULT (NumPy bodies release the GIL)."""
    bench = get_benchmark("mmult")
    size = problem_sizes("mmult", "N")["small"]

    def run():
        prog = bench.build(size, unroll=32, max_threads=64)
        return NativeRuntime(prog, nkernels=4).run()

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    bench.verify(res.env, size)


def test_native_tub_throughput(benchmark):
    """TUB push+drain throughput under the real locks."""
    from repro.tsu.tub import ThreadUpdateBuffer

    def run():
        tub = ThreadUpdateBuffer(nsegments=8, segment_capacity=64)
        for i in range(400):
            tub.push(i, preferred_segment=i % 8)
            if i % 50 == 49:
                tub.drain()
        return len(tub.drain())

    benchmark(run)
