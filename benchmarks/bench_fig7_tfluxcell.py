"""F7 — Figure 7: TFluxCell speedups.

4 benchmarks (the paper did not port FFT to the Cell) × kernels ∈ {2,4,6}
× the Cell problem-size column of Table 1.

Paper observations (§6.3): TRAPEZ/MMULT/SUSAN reach high speedup (5.0-5.5
at 6 SPEs); MMULT needs unroll 64; QSORT stays low (1.3-2.1) because the
Cell-sized inputs are too small to amortise the overheads — and larger
inputs cannot run at all (Local Store capacity; reproduced in
tests/test_cell.py and the A4 ablation).

Known deviation: our QSORT-on-Cell speedup sits well above the paper's
1.3-2.1 band — see EXPERIMENTS.md for the analysis (their SPE sort/merge
code pays scalar/branchy per-element costs our Bagle-calibrated constants
do not capture).
"""

import pytest

from benchmarks.conftest import MAX_THREADS, SIZES, UNROLLS_CELL, report
from repro.analysis import PAPER, render_grid, sweep_figure
from repro.platforms import TFluxCell

BENCHES = ("trapez", "mmult", "qsort", "susan")
KERNELS = (2, 4, 6)


@pytest.fixture(scope="module")
def grid():
    return sweep_figure(
        TFluxCell(),
        benches=BENCHES,
        kernel_counts=KERNELS,
        sizes=SIZES,
        unrolls=UNROLLS_CELL,
        max_threads=MAX_THREADS,
    )


def test_figure7_table(grid):
    report(render_grid(grid, "Figure 7 — TFluxCell speedup (measured)"))


def test_six_spe_values_in_band(grid):
    for bench, paper_value in PAPER.fig7_best_6.items():
        if bench == "qsort":
            continue  # known deviation, see module docstring
        got = grid.speedup(bench, 6, "large")
        assert 0.45 * paper_value < got < 1.6 * paper_value, (
            f"{bench}: measured {got:.2f} vs paper {paper_value}"
        )


def test_qsort_is_the_laggard(grid):
    """§6.3: QSORT's Cell speedup is 'lower than what was expected' — it
    trails every other benchmark (the magnitude of the gap is a known
    deviation, see module docstring)."""
    s = {b: grid.speedup(b, 6, "large") for b in BENCHES}
    assert s["qsort"] == min(s.values())


def test_compute_benchmarks_scale(grid):
    for bench in ("trapez", "mmult", "susan"):
        series = [grid.speedup(bench, nk, "large") for nk in KERNELS]
        assert series[-1] > series[0]
        assert series[-1] > 3.5, f"{bench}: {series}"


def test_fft_runs_on_cell_beyond_the_paper():
    """Extension: the paper never ported FFT to the Cell (Figure 7 has no
    FFT bars).  Our decomposition's per-thread slices fit the Local Store,
    so TFluxCell *can* run it — reproduced here as a correctness check of
    the platform rather than of a paper number."""
    from repro.apps import get_benchmark, problem_sizes

    bench = get_benchmark("fft")
    size = problem_sizes("fft", "C")["small"]
    prog = bench.build(size, unroll=8)
    res = TFluxCell().execute(prog, nkernels=4)
    bench.verify(res.env, size)


def test_mmult_coarse_unroll_competitive(grid):
    """§6.3: 'for MMULT high speedup is only achieved with an unrolling
    factor of 64'.  Our scheduling-cost model reproduces the direction
    weakly (the authors' factor-64 requirement also reflects SPE SIMD
    vectorisation of the unrolled inner loop, outside a scheduling model's
    scope): unroll 64 must at least stay within 10% of the best."""
    per_u = grid.get("mmult", 6, "large").per_unroll
    assert per_u[max(per_u)] >= 0.9 * max(per_u.values())


@pytest.mark.parametrize("bench", BENCHES)
def test_fig7_cell_benchmark(benchmark, bench):
    from repro.apps import get_benchmark, problem_sizes

    platform = TFluxCell()
    size = problem_sizes(bench, "C")["small"]

    def run():
        return platform.evaluate(
            get_benchmark(bench), size, nkernels=4, unrolls=(16,),
            verify=False, max_threads=256,
        )

    ev = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ev.speedup > 0.5
