"""A8 — Dynamic unrolling vs the pre-unrolled static equivalent.

The dynamic-graph claim: when a Subflow-spawning program unrolls, at run
time, into the *same* block sequence a static program fixed up front,
the TSU schedules it identically — dynamism costs only the shipping of
the spawn itself, never a different schedule.

Construction: a chain of ``depth + 1`` stages of exactly ``cap``
uniform-cost DThreads each, with ``cap`` also the TSU block capacity.

* **static** — all stages built ahead of time; stage *i*'s spawner
  thread feeds every stage *i+1* thread, arcs the block splitter folds
  into the Outlet→Inlet barrier.
* **dynamic** — only stage 0 is built; each stage's first thread spawns
  stage *i+1* as a :class:`~repro.core.dynamic.Subflow`.

Both yield blocks of identical size, in-block Ready Counts (all zero:
the cross-stage arcs are barrier-subsumed) and contiguous placement, so
with a free transport (``ZeroOverheadAdapter``) the dynamic run must
match the static one **cycle for cycle**; on the priced platforms the
difference is bounded by the spawn transport (one TUB push per spawn on
TFluxSoft, a posted-store burst on TFluxHard).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import report
from repro.core.builder import ProgramBuilder
from repro.core.dynamic import Subflow
from repro.runtime.simdriver import SimulatedRuntime
from repro.sim.machine import BAGLE_27
from repro.tsu.hardware import HardwareTSUAdapter
from repro.tsu.software import SoftTSUCosts, SoftwareTSUAdapter

#: Uniform DThread cost (cycles) — large against protocol constants so
#: the schedules, not rounding, dominate.
WORK = 4_000
NKERNELS = 4

#: (cap, depth): stage width == TSU capacity, number of spawned stages.
GRID = ((4, 3), (8, 2), (6, 5))

ADAPTERS = {
    "zero-overhead": None,
    "tfluxhard": lambda e, t: HardwareTSUAdapter(e, t),
    "tfluxsoft": lambda e, t: SoftwareTSUAdapter(e, t),
}


def _val(cap: int, stage: int, j: int) -> int:
    return stage * cap + j + 1


def _cost(env, _ctx) -> int:
    return WORK


def _build_static(cap: int, depth: int):
    b = ProgramBuilder(f"chain-static[{cap}x{depth + 1}]")
    b.env.alloc("out", cap * (depth + 1))
    prev = None
    for stage in range(depth + 1):
        def sp_body(env, _ctx, stage=stage):
            env.array("out")[stage * cap] = _val(cap, stage, 0)

        def w_body(env, ctx, stage=stage):
            env.array("out")[stage * cap + ctx + 1] = _val(cap, stage, ctx + 1)

        t_sp = b.thread(f"spawn{stage}", body=sp_body, cost=_cost)
        t_w = b.thread(f"w{stage}", body=w_body, contexts=cap - 1, cost=_cost)
        if prev is not None:
            b.depends(prev, t_sp, "all")
            b.depends(prev, t_w, "all")
        prev = t_sp
    return b.build()


def _build_dynamic(cap: int, depth: int):
    b = ProgramBuilder(f"chain-dyn[{cap}x{depth + 1}]")
    b.env.alloc("out", cap * (depth + 1))

    def make_workers(stage: int):
        def body(env, ctx):
            env.array("out")[stage * cap + ctx + 1] = _val(cap, stage, ctx + 1)

        return body

    def make_spawner(stage: int):
        def body(env, _ctx):
            env.array("out")[stage * cap] = _val(cap, stage, 0)
            if stage == depth:
                return None
            # Mirror the static stage shape template-for-template (one
            # spawner, one multi-context worker template) so placement
            # assigns the spawned block exactly like the static one.
            sf = Subflow(f"stage{stage + 1}")
            sf.thread(
                f"spawn{stage + 1}", body=make_spawner(stage + 1), cost=_cost
            )
            sf.thread(
                f"w{stage + 1}",
                body=make_workers(stage + 1),
                contexts=cap - 1,
                cost=_cost,
            )
            return sf

        return body

    b.thread("spawn0", body=make_spawner(0), cost=_cost)
    b.thread("w0", body=make_workers(0), contexts=cap - 1, cost=_cost)
    return b.build()


def _run(prog, factory, cap):
    rt = SimulatedRuntime(
        prog, BAGLE_27, nkernels=NKERNELS,
        adapter_factory=factory, tsu_capacity=cap,
    )
    return rt.run()


def _check_out(env, cap: int, depth: int) -> None:
    np.testing.assert_array_equal(
        env.array("out"), np.arange(1, cap * (depth + 1) + 1, dtype=np.float64)
    )


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for cap, depth in GRID:
        for name, factory in ADAPTERS.items():
            stat = _run(_build_static(cap, depth), factory, cap)
            dyn = _run(_build_dynamic(cap, depth), factory, cap)
            _check_out(stat.env, cap, depth)
            _check_out(dyn.env, cap, depth)
            out[(cap, depth, name)] = (stat, dyn)
    return out


def test_dynamic_vs_static_table(sweep):
    lines = [
        "A8 — Dynamic unrolling vs pre-unrolled static equivalent "
        f"(stage chains, uniform {WORK}-cycle threads, {NKERNELS} kernels)",
        f"{'cap':>4} {'depth':>5} {'adapter':>14} {'static':>10} "
        f"{'dynamic':>10} {'delta':>7}",
    ]
    for (cap, depth, name), (stat, dyn) in sweep.items():
        lines.append(
            f"{cap:>4} {depth:>5} {name:>14} {stat.region_cycles:>10,} "
            f"{dyn.region_cycles:>10,} {dyn.region_cycles - stat.region_cycles:>7,}"
        )
    report("\n".join(lines))


def test_zero_overhead_is_cycle_for_cycle(sweep):
    """With a free transport the dynamic schedule IS the static one."""
    for cap, depth in GRID:
        stat, dyn = sweep[(cap, depth, "zero-overhead")]
        assert dyn.region_cycles == stat.region_cycles
        assert dyn.cycles == stat.cycles


def test_priced_platforms_pay_only_spawn_transport(sweep):
    """On priced platforms the dynamic run trails the static one by at
    most the spawn shipping cost (per spawn), never by a reshuffled
    schedule."""
    soft_ship = SoftTSUCosts().tub_push_cycles
    for cap, depth in GRID:
        # TFluxSoft ships each spawn as one extra TUB push, on the
        # spawner's critical path: the delta is exactly one push per
        # spawn.
        stat, dyn = sweep[(cap, depth, "tfluxsoft")]
        assert dyn.region_cycles - stat.region_cycles == depth * soft_ship
        # TFluxHard ships it as a posted-store burst (one command plus
        # one store per spawned instance).
        stat, dyn = sweep[(cap, depth, "tfluxhard")]
        delta = dyn.region_cycles - stat.region_cycles
        assert 0 < delta <= depth * 16 * cap, (
            f"tfluxhard cap={cap} depth={depth}: delta {delta}"
        )


def test_spawn_counters(sweep):
    for cap, depth in GRID:
        for name in ADAPTERS:
            stat, dyn = sweep[(cap, depth, name)]
            assert stat.counters["tsu.spawns"] == 0
            assert stat.counters["tsu.dynamic_blocks"] == 0
            assert dyn.counters["tsu.spawns"] == depth
            assert dyn.counters["tsu.dynamic_blocks"] == depth
            assert dyn.counters["tsu.squashed"] == 0
