"""N1 — the paper's headline numbers (§1/§8).

"The experimental results show that the performance achieved is close to
linear speedup, on average 21x for the 27 nodes TFluxHard, and 4.4x on a
6 nodes TFluxSoft and TFluxCell.  Most importantly, the observed speedup
is stable across the different platforms."
"""

import pytest

from benchmarks.conftest import MAX_THREADS, UNROLLS_CELL, UNROLLS_HARD, UNROLLS_SOFT, report
from repro.analysis import sweep_figure
from repro.platforms import TFluxCell, TFluxHard, TFluxSoft

HARD_BENCHES = ("trapez", "mmult", "qsort", "susan", "fft")
CELL_BENCHES = ("trapez", "mmult", "qsort", "susan")


@pytest.fixture(scope="module")
def hard():
    return sweep_figure(
        TFluxHard(), HARD_BENCHES, kernel_counts=(27,), sizes=("large",),
        unrolls=UNROLLS_HARD, max_threads=MAX_THREADS,
    )


@pytest.fixture(scope="module")
def soft():
    return sweep_figure(
        TFluxSoft(), HARD_BENCHES, kernel_counts=(6,), sizes=("large",),
        unrolls=UNROLLS_SOFT, max_threads=MAX_THREADS,
    )


@pytest.fixture(scope="module")
def cell():
    return sweep_figure(
        TFluxCell(), CELL_BENCHES, kernel_counts=(6,), sizes=("large",),
        unrolls=UNROLLS_CELL, max_threads=MAX_THREADS,
    )


def test_headline_table(hard, soft, cell):
    lines = [
        "N1 — headline averages (large inputs)",
        f"{'platform':<11} {'nodes':>5} {'measured':>9} {'paper':>7}",
        f"{'tfluxhard':<11} {27:>5} {hard.average(27, 'large'):>9.2f} {21.0:>7}",
        f"{'tfluxsoft':<11} {6:>5} {soft.average(6, 'large'):>9.2f} {'~4.4':>7}",
        f"{'tfluxcell':<11} {6:>5} {cell.average(6, 'large'):>9.2f} {'~4.4':>7}",
    ]
    report("\n".join(lines))


def test_hard_average_near_21(hard):
    avg = hard.average(27, "large")
    assert 16.0 < avg < 26.0, f"{avg:.2f}"


def test_software_platforms_average_near_4_4(soft, cell):
    combined = (soft.average(6, "large") + cell.average(6, "large")) / 2
    assert 3.5 < combined < 6.0, f"{combined:.2f}"


def test_stability_across_platforms(soft, cell):
    """'the observed speedup is stable across the different platforms':
    per-benchmark 6-node speedups of the two software platforms agree
    within a factor."""
    for bench in CELL_BENCHES:
        s = soft.speedup(bench, 6, "large")
        c = cell.speedup(bench, 6, "large")
        assert 0.55 < s / c < 1.8, f"{bench}: soft {s:.2f} vs cell {c:.2f}"


def test_headline_benchmark(benchmark, hard):
    benchmark.pedantic(lambda: hard.average(27, "large"), rounds=1, iterations=1)
