"""P1 — DES kernel hot-path microbenchmark.

Every cycle number in the harness flows through ``repro.sim.engine``, so
its dispatch loop, timer resume, and ``Resource`` grant/release paths are
the harness's hottest code.  This microbenchmark drives the kernel with a
contended-resource workload shaped like the bus arbiter / TSU command
port under load: many processes queueing on a small-capacity resource
with short timer yields in between.

Besides the throughput report, the scaling test guards the complexity of
the grant queue: ``Resource.release`` once used ``list.pop(0)``, which
made the contended case O(queue) per release — quadratic overall — and
this is exactly the workload where it showed.
"""

import os
import time

import pytest

from benchmarks.conftest import report
from repro.sim.engine import ENV_FASTPATH, Engine


def _contended_run(nprocs: int, rounds: int) -> int:
    """Run the workload; returns the number of callbacks dispatched."""
    eng = Engine()
    bus = eng.resource(capacity=2, name="bus")

    def worker(eng, bus, rounds):
        for _ in range(rounds):
            grant = bus.request()
            if not grant.triggered:
                yield grant
            yield 3
            bus.release()
            yield 1

    for i in range(nprocs):
        eng.process(worker(eng, bus, rounds), name=f"w{i}")
    eng.run()
    return eng.events_executed


def _best_seconds(nprocs: int, rounds: int, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _contended_run(nprocs, rounds)
        best = min(best, time.perf_counter() - t0)
    return best


def test_hotpath_throughput_table():
    lines = [
        "P1 — DES kernel throughput, contended-resource workload",
        f"{'procs':>6} {'rounds':>7} {'events':>9} {'best time':>10} {'events/s':>11}",
    ]
    for nprocs, rounds in ((8, 2_000), (64, 500), (256, 125)):
        events = _contended_run(nprocs, rounds)
        secs = _best_seconds(nprocs, rounds, repeats=1)
        lines.append(
            f"{nprocs:>6} {rounds:>7} {events:>9,} {secs:>9.3f}s "
            f"{events / secs:>11,.0f}"
        )
    report("\n".join(lines))


def test_event_count_scales_linearly():
    """The workload itself is linear: dispatch counts must scale with
    work, independent of timing noise."""
    base = _contended_run(64, 200)
    double = _contended_run(128, 200)
    assert base > 0
    assert double == pytest.approx(2 * base, rel=0.02)


def test_contended_queue_is_not_quadratic():
    """Doubling the waiter count at constant total work must not blow up
    run time.  With the O(n) ``list.pop(0)`` grant queue this ratio was
    super-linear in the queue depth; the deque keeps it flat (3x bound
    leaves headroom for timing noise on loaded hosts)."""
    base = _best_seconds(64, 400)
    deep = _best_seconds(256, 100)  # 4x the queue depth, same total ops
    assert deep < max(base, 1e-3) * 3, (
        f"deep-queue run {deep:.3f}s vs {base:.3f}s — release looks O(queue)"
    )


def test_engine_hotpath_benchmark(benchmark):
    result = benchmark.pedantic(
        lambda: _contended_run(64, 500), rounds=1, iterations=1
    )
    assert result > 0


# -- the protocol fast path on a real program ----------------------------------
def _protocol_run(nkernels: int, fast: bool):
    """TRAPEZ on TFluxHard with the DES fast path forced on/off; returns
    (events dispatched, DThread instances, total cycles)."""
    from repro.apps import get_benchmark, problem_sizes
    from repro.platforms import TFluxHard

    old = os.environ.get(ENV_FASTPATH)
    os.environ[ENV_FASTPATH] = "1" if fast else "0"
    try:
        bench = get_benchmark("trapez")
        size = problem_sizes("trapez", "S")["small"]
        prog = bench.build(size, unroll=8, max_threads=1024)
        result = TFluxHard().execute(prog, nkernels=nkernels)
    finally:
        if old is None:
            del os.environ[ENV_FASTPATH]
        else:
            os.environ[ENV_FASTPATH] = old
    return (
        result.counters["engine.events"],
        result.total_dthreads,
        result.cycles,
    )


def test_fastpath_event_reduction_table():
    lines = [
        "P1 — protocol fast path: dispatched events per DThread instance",
        f"{'kernels':>8} {'ev/inst off':>12} {'ev/inst on':>11} {'ratio':>6}",
    ]
    for nkernels in (1, 4):
        ev_on, n, _ = _protocol_run(nkernels, fast=True)
        ev_off, _, _ = _protocol_run(nkernels, fast=False)
        lines.append(
            f"{nkernels:>8} {ev_off / n:>12.2f} {ev_on / n:>11.2f} "
            f"{ev_off / ev_on:>6.2f}"
        )
    report("\n".join(lines))


def test_fastpath_halves_uncontended_events():
    """The tentpole claim: an uncontended protocol run (the single-kernel
    shape every sequential baseline and every sweep's serial side takes)
    dispatches at least 2x fewer engine events with coalescing on — at
    bit-identical cycle counts."""
    ev_on, instances, cycles_on = _protocol_run(1, fast=True)
    ev_off, _, cycles_off = _protocol_run(1, fast=False)
    assert cycles_on == cycles_off
    assert instances > 0
    assert ev_off >= 2 * ev_on, (
        f"fast path saves only {ev_off / ev_on:.2f}x "
        f"({ev_off}/{instances} -> {ev_on}/{instances} events/instance)"
    )


def test_fastpath_helps_contended_runs_too():
    """Contention disengages the fast path per-op, never adds events."""
    ev_on, _, cycles_on = _protocol_run(4, fast=True)
    ev_off, _, cycles_off = _protocol_run(4, fast=False)
    assert cycles_on == cycles_off
    assert ev_on < ev_off
