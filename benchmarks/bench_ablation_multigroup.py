"""A5 — multiple TSU Groups (the §4.1 extension, built out).

"For systems with very large number of CPUs it may be beneficial to have
multiple TSU Groups."  We measure the anticipated trade-off on TFluxHard
with deliberately *fine-grained* DThreads (where the single command port
is the bottleneck): partitioning the 27 kernels over 1/2/4 TSU Group
devices relieves port contention at the price of inter-group
Ready-Count transfers.
"""

import pytest

from benchmarks.conftest import report
from repro.apps import get_benchmark, problem_sizes
from repro.exec import JobSpec, run_job, run_jobs
from repro.platforms import TFluxHard
from repro.runtime.simdriver import SimulatedRuntime
from repro.sim.machine import BAGLE_27
from repro.tsu.multigroup import MultiGroupHardwareAdapter

GROUPS = (1, 2, 4, 27)  # 27 = one TSU per kernel (the D2NOW-style design §3.3 argues against)
#: High TSU processing time + fine threads = visible port contention.
TSU_CYCLES = 64


class MultiGroupHard(TFluxHard):
    """TFluxHard with the TSU partitioned over *n_groups* Group devices.

    Module-level (not a closure) so JobSpecs carrying it stay picklable;
    ``n_groups`` lands in the platform state and hence the cache digest.
    """

    def __init__(self, n_groups: int) -> None:
        super().__init__(tsu_processing_cycles=TSU_CYCLES)
        self.n_groups = n_groups
        self.name = f"tfluxhard-{n_groups}g"

    def adapter_factory(self):
        n, lat = self.n_groups, self.tsu_processing_cycles
        return lambda engine, tsu: MultiGroupHardwareAdapter(
            engine, tsu, n_groups=n, tsu_processing_cycles=lat
        )


def _spec(n_groups: int) -> JobSpec:
    return JobSpec(
        platform=MultiGroupHard(n_groups),
        bench="trapez",
        size=problem_sizes("trapez", "S")["small"],
        nkernels=27,
        unroll=1,
        max_threads=8192,
        mode="execute",
    )


def run_fine_grained(n_groups: int) -> tuple[int, int]:
    """Returns (region cycles, inter-group transfers)."""
    out = run_job(_spec(n_groups))
    return out.region_cycles, out.result.counters["tsu.intergroup_transfers"]


@pytest.fixture(scope="module")
def sweep():
    outcomes = run_jobs([_spec(g) for g in GROUPS])
    return {
        g: (out.region_cycles, out.result.counters["tsu.intergroup_transfers"])
        for g, out in zip(GROUPS, outcomes)
    }


def test_multigroup_table(sweep):
    base = sweep[1][0]
    lines = [
        "A5 — TSU Group count vs fine-grained-thread performance "
        f"(TRAPEZ small, unroll 1, TSU latency {TSU_CYCLES})",
        f"{'groups':>6} {'region cycles':>14} {'vs 1 group':>11} "
        f"{'inter-group transfers':>22}",
    ]
    for g, (cycles, transfers) in sweep.items():
        lines.append(
            f"{g:>6} {cycles:>14,} {base / cycles:>10.2f}x {transfers:>22,}"
        )
    report("\n".join(lines))


def test_more_groups_relieve_contention(sweep):
    """With a contended port, 2 groups must beat 1."""
    assert sweep[2][0] < sweep[1][0] * 0.98


def test_single_group_has_no_intergroup_traffic(sweep):
    assert sweep[1][1] == 0


def test_intergroup_traffic_grows_with_groups(sweep):
    assert sweep[27][1] >= sweep[4][1] >= sweep[2][1] >= 0


def test_per_cpu_tsus_maximise_tsu_to_tsu_traffic(sweep):
    """§3.3: with a distinct TSU per CPU (the D2NOW arrangement), almost
    every Ready-Count update crosses TSUs — the communication the TSU
    Group absorbs internally."""
    per_cpu_traffic = sweep[27][1]
    grouped_traffic = sweep[2][1]
    assert per_cpu_traffic > 1.5 * grouped_traffic


def test_results_identical_across_group_counts():
    """Scheduling semantics are unchanged: same numerical output."""
    bench = get_benchmark("trapez")
    size = problem_sizes("trapez", "S")["small"]
    values = []
    for g in (1, 4):
        prog = bench.build(size, unroll=4, max_threads=1024)
        res = SimulatedRuntime(
            prog, BAGLE_27, nkernels=8,
            adapter_factory=lambda e, t, g=g: MultiGroupHardwareAdapter(e, t, n_groups=g),
        ).run()
        bench.verify(res.env, size)
        values.append(res.env.get("integral"))
    assert values[0] == values[1]


def test_bad_group_counts_rejected():
    from repro.core import ProgramBuilder
    from repro.sim.engine import Engine
    from repro.tsu.group import TSUGroup

    b = ProgramBuilder("tiny")
    b.thread("t", body=lambda env, _: None)
    blocks = b.build().blocks()
    engine = Engine()
    tsu = TSUGroup(2, blocks)
    with pytest.raises(ValueError):
        MultiGroupHardwareAdapter(engine, tsu, n_groups=0)
    with pytest.raises(ValueError):
        MultiGroupHardwareAdapter(engine, tsu, n_groups=3)


def test_ablation_benchmark(benchmark):
    result = benchmark.pedantic(lambda: run_fine_grained(2)[0], rounds=1, iterations=1)
    assert result > 0
