"""A4 — §6.3 ablation: the Cell Local-Store capacity wall for QSORT.

"The reason for not using larger problem sizes is that they would not fit
in each SPE Local Store.  To overcome this limitation we would have to
change the algorithm in order to perform the execution in stages."

Reproduced as a sweep of QSORT input size against the Local-Store data
budget: the Cell-column sizes of Table 1 run; the simulated-column sizes
do not (the resident merge inputs overflow), which is exactly why the
paper's Table 1 gives QSORT a separate, smaller Cell grid.
"""

import pytest

from benchmarks.conftest import report
from repro.exec import JobOutcome, JobSpec, run_job, run_jobs
from repro.platforms import TFluxCell


def _spec(n_elements: int) -> JobSpec:
    from repro.apps.common import ProblemSize

    return JobSpec(
        platform=TFluxCell(),
        bench="qsort",
        size=ProblemSize("qsort", "C", f"n{n_elements}", {"n": n_elements}),
        nkernels=4,
        unroll=16,
        max_threads=512,
        verify=True,
        mode="execute",
        capture_errors=True,
    )


def _interpret(outcome: JobOutcome) -> tuple[bool, str]:
    """(ran, note) for one QSORT attempt; the failure *is* the datum."""
    if outcome.error is None:
        return True, f"{outcome.region_cycles:,} cycles"
    qualname, message = outcome.error
    assert qualname.endswith("CellLocalStoreError"), outcome.error
    return False, message.split(";")[0]


def try_size(n_elements: int) -> tuple[bool, str]:
    """Attempt QSORT with *n_elements* on the Cell; returns (ran, note)."""
    return _interpret(run_job(_spec(n_elements)))


SIZES = (3_000, 6_000, 12_000, 20_000, 26_000, 50_000)


@pytest.fixture(scope="module")
def outcomes():
    results = run_jobs([_spec(n) for n in SIZES])
    return {n: _interpret(out) for n, out in zip(SIZES, results)}


def test_localstore_wall_table(outcomes):
    lines = [
        "A4 — QSORT on TFluxCell vs Local-Store capacity (merge inputs resident)",
        f"{'elements':>9} {'runs?':>6}  note",
    ]
    for n, (ran, note) in outcomes.items():
        lines.append(f"{n:>9} {'yes' if ran else 'NO':>6}  {note}")
    report("\n".join(lines))


def test_cell_table1_sizes_all_run(outcomes):
    for n in (3_000, 6_000, 12_000):
        ran, note = outcomes[n]
        assert ran, f"Table-1 Cell size {n} failed: {note}"


def test_simulated_sizes_hit_the_wall(outcomes):
    """The S/N 50K input cannot run — the constraint that forced the
    paper's separate Cell size column."""
    ran, note = outcomes[50_000]
    assert not ran
    assert "Local Store" in note


def test_wall_is_a_threshold(outcomes):
    """Outcomes are monotone: once an input overflows, larger ones do."""
    seen_failure = False
    for n in SIZES:
        ran, _ = outcomes[n]
        if not ran:
            seen_failure = True
        elif seen_failure:
            pytest.fail(f"size {n} ran after a smaller size failed")


def test_ablation_benchmark(benchmark, outcomes):
    result = benchmark.pedantic(
        lambda: try_size(3_000)[0], rounds=1, iterations=1
    )
    assert result
