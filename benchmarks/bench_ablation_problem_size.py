"""A3 — §6.1.2 ablation: speedup vs problem size.

"for all cases the speedup increases for larger problem sizes.  This is
justified by the fact that as the benchmark's execution time increases
the parallelization overhead is amortized."
"""

import pytest

from benchmarks.conftest import report
from repro.apps import get_benchmark, problem_sizes
from repro.platforms import TFluxHard, TFluxSoft

BENCHES = ("trapez", "mmult", "qsort", "susan", "fft")
SIZES = ("small", "medium", "large")


def size_series(platform, bench_name: str, nkernels: int) -> dict[str, float]:
    bench = get_benchmark(bench_name)
    grid = problem_sizes(bench_name, platform.target)
    out = {}
    for label in SIZES:
        ev = platform.evaluate(
            bench, grid[label], nkernels=nkernels, unrolls=(4, 16),
            verify=False, max_threads=1024,
        )
        out[label] = ev.speedup
    return out


@pytest.fixture(scope="module")
def hard_series():
    plat = TFluxHard()
    return {b: size_series(plat, b, nkernels=27) for b in BENCHES}


def test_size_table(hard_series):
    lines = [
        "A3 — speedup vs problem size (TFluxHard, 27 kernels)",
        f"{'benchmark':<9} " + "".join(f"{s:>9}" for s in SIZES),
    ]
    for bench, row in hard_series.items():
        lines.append(
            f"{bench.upper():<9} " + "".join(f"{row[s]:>9.2f}" for s in SIZES)
        )
    report("\n".join(lines))


def test_speedup_monotone_in_size(hard_series):
    """Codes with headroom gain with size; codes already at the linear
    ceiling (TRAPEZ/SUSAN ~25x on 27 kernels) may plateau within a few
    percent, so the tolerance is loose there."""
    for bench, row in hard_series.items():
        assert row["large"] >= row["small"] * 0.90, f"{bench}: {row}"
    gains = [row["large"] - row["small"] for row in hard_series.values()]
    assert sum(gains) > 0, f"aggregate trend not positive: {hard_series}"


def test_largest_gain_for_overhead_bound_codes(hard_series):
    """Benchmarks whose threads are finest at a given size gain the most
    from growing the input (more work per DThread)."""
    gains = {
        b: hard_series[b]["large"] / max(hard_series[b]["small"], 1e-9)
        for b in BENCHES
    }
    assert max(gains.values()) > 1.02


def test_soft_platform_also_monotone():
    plat = TFluxSoft()
    row = size_series(plat, "trapez", nkernels=6)
    assert row["large"] >= row["small"] * 0.95


def test_ablation_benchmark(benchmark):
    plat = TFluxHard()
    result = benchmark.pedantic(
        lambda: size_series(plat, "fft", nkernels=8)["small"],
        rounds=1,
        iterations=1,
    )
    assert result > 1.0
