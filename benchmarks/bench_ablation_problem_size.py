"""A3 — §6.1.2 ablation: speedup vs problem size.

"for all cases the speedup increases for larger problem sizes.  This is
justified by the fact that as the benchmark's execution time increases
the parallelization overhead is amortized."
"""

import pytest

from benchmarks.conftest import report
from repro.apps import problem_sizes
from repro.exec import EvalRequest, evaluate_many
from repro.platforms import TFluxHard, TFluxSoft

BENCHES = ("trapez", "mmult", "qsort", "susan", "fft")
SIZES = ("small", "medium", "large")


def _requests(platform, bench_name: str, nkernels: int) -> list[EvalRequest]:
    grid = problem_sizes(bench_name, platform.target)
    return [
        EvalRequest(
            platform=platform,
            bench=bench_name,
            size=grid[label],
            nkernels=nkernels,
            unrolls=(4, 16),
            verify=False,
            max_threads=1024,
        )
        for label in SIZES
    ]


def size_series(platform, bench_name: str, nkernels: int) -> dict[str, float]:
    evs = evaluate_many(_requests(platform, bench_name, nkernels))
    return {label: ev.speedup for label, ev in zip(SIZES, evs)}


@pytest.fixture(scope="module")
def hard_series():
    # The full 5-benchmark x 3-size grid as one 30-job exec batch.
    plat = TFluxHard()
    requests = [r for b in BENCHES for r in _requests(plat, b, nkernels=27)]
    evs = iter(evaluate_many(requests))
    return {b: {label: next(evs).speedup for label in SIZES} for b in BENCHES}


def test_size_table(hard_series):
    lines = [
        "A3 — speedup vs problem size (TFluxHard, 27 kernels)",
        f"{'benchmark':<9} " + "".join(f"{s:>9}" for s in SIZES),
    ]
    for bench, row in hard_series.items():
        lines.append(
            f"{bench.upper():<9} " + "".join(f"{row[s]:>9.2f}" for s in SIZES)
        )
    report("\n".join(lines))


def test_speedup_monotone_in_size(hard_series):
    """Codes with headroom gain with size; codes already at the linear
    ceiling (TRAPEZ/SUSAN ~25x on 27 kernels) may plateau within a few
    percent, so the tolerance is loose there."""
    for bench, row in hard_series.items():
        assert row["large"] >= row["small"] * 0.90, f"{bench}: {row}"
    gains = [row["large"] - row["small"] for row in hard_series.values()]
    assert sum(gains) > 0, f"aggregate trend not positive: {hard_series}"


def test_largest_gain_for_overhead_bound_codes(hard_series):
    """Benchmarks whose threads are finest at a given size gain the most
    from growing the input (more work per DThread)."""
    gains = {
        b: hard_series[b]["large"] / max(hard_series[b]["small"], 1e-9)
        for b in BENCHES
    }
    assert max(gains.values()) > 1.02


def test_soft_platform_also_monotone():
    plat = TFluxSoft()
    row = size_series(plat, "trapez", nkernels=6)
    assert row["large"] >= row["small"] * 0.95


def test_ablation_benchmark(benchmark):
    plat = TFluxHard()
    result = benchmark.pedantic(
        lambda: size_series(plat, "fft", nkernels=8)["small"],
        rounds=1,
        iterations=1,
    )
    assert result > 1.0
