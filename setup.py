"""Legacy setup shim (the environment lacks the wheel package needed for PEP-517 editable installs)."""
from setuptools import setup

setup()
